// Oracle tests for the bounded CCTL operators: an independent brute-force
// evaluator enumerates every maximal path prefix up to the window bound and
// decides AF/EF/AG/EG[a,b] directly from the definition; the fixpoint-based
// checker must agree on every state of random models.

#include <gtest/gtest.h>

#include <functional>

#include "automata/random.hpp"
#include "ctl/checker.hpp"
#include "ctl/formula.hpp"
#include "helpers.hpp"
#include "util/rng.hpp"

namespace mui::ctl {
namespace {

using automata::Automaton;
using automata::StateId;
using test::Tables;

/// Enumerates every path from `s`: either exactly `depth` steps long, or
/// shorter and ending in a deadlock state. Calls `f` with the state
/// sequence; stops early when `f` returns false. Returns false iff some
/// call returned false.
bool forEachMaximalPrefix(const Automaton& m, StateId s, std::size_t depth,
                          std::vector<StateId>& path,
                          const std::function<bool(const std::vector<StateId>&)>& f) {
  path.push_back(s);
  bool ok = true;
  if (path.size() == depth + 1 || m.transitionsFrom(s).empty()) {
    ok = f(path);
  } else {
    for (const auto& t : m.transitionsFrom(s)) {
      if (!forEachMaximalPrefix(m, t.to, depth, path, f)) {
        ok = false;
        break;
      }
    }
  }
  path.pop_back();
  return ok;
}

struct Oracle {
  const Automaton& m;
  std::vector<char> phi;  // φ per state

  /// Does the path prefix (positions 0..k) satisfy "φ somewhere in [a,b]"?
  bool fOnPath(const std::vector<StateId>& p, std::size_t a,
               std::size_t b) const {
    for (std::size_t i = a; i <= b && i < p.size(); ++i) {
      if (phi[p[i]]) return true;
    }
    return false;
  }
  /// Does the prefix satisfy "φ everywhere in [a,b] (that exists)"?
  bool gOnPath(const std::vector<StateId>& p, std::size_t a,
               std::size_t b) const {
    for (std::size_t i = a; i <= b && i < p.size(); ++i) {
      if (!phi[p[i]]) return false;
    }
    return true;
  }

  bool af(StateId s, std::size_t a, std::size_t b) const {
    std::vector<StateId> path;
    return forEachMaximalPrefix(
        m, s, b, path, [&](const auto& p) { return fOnPath(p, a, b); });
  }
  bool ef(StateId s, std::size_t a, std::size_t b) const {
    std::vector<StateId> path;
    // "all prefixes fail" == !EF.
    return !forEachMaximalPrefix(
        m, s, b, path, [&](const auto& p) { return !fOnPath(p, a, b); });
  }
  bool ag(StateId s, std::size_t a, std::size_t b) const {
    std::vector<StateId> path;
    return forEachMaximalPrefix(
        m, s, b, path, [&](const auto& p) { return gOnPath(p, a, b); });
  }
  bool eg(StateId s, std::size_t a, std::size_t b) const {
    std::vector<StateId> path;
    return !forEachMaximalPrefix(
        m, s, b, path, [&](const auto& p) { return !gOnPath(p, a, b); });
  }
};

class BoundedOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BoundedOracle, FixpointsMatchPathEnumeration) {
  const std::uint64_t seed = GetParam();
  Tables t;
  automata::RandomSpec spec;
  spec.states = 5;
  spec.inputs = 1;
  spec.outputs = 1;
  spec.densityPct = 35;
  spec.deterministic = false;
  spec.noLocalDeadlocks = false;  // deadlocks exercise the weak semantics
  spec.labelStates = false;
  spec.seed = seed;
  spec.name = "m";
  Automaton m = automata::randomAutomaton(spec, t.signals, t.props);
  util::Rng rng(seed * 97 + 11);
  Oracle oracle{m, std::vector<char>(m.stateCount(), 0)};
  for (StateId s = 0; s < m.stateCount(); ++s) {
    if (rng.chance(45, 100)) {
      m.addLabel(s, "p");
      oracle.phi[s] = 1;
    }
  }

  Checker checker(m);
  const auto phiF = Formula::mkAtom("p");
  for (std::size_t a = 0; a <= 3; ++a) {
    for (std::size_t b = a; b <= 4; ++b) {
      const Bound bound{a, b};
      const auto af = checker.evaluate(Formula::mkAF(phiF, bound));
      const auto ef = checker.evaluate(Formula::mkEF(phiF, bound));
      const auto ag = checker.evaluate(Formula::mkAG(phiF, bound));
      const auto eg = checker.evaluate(Formula::mkEG(phiF, bound));
      for (StateId s = 0; s < m.stateCount(); ++s) {
        EXPECT_EQ(static_cast<bool>(af[s]), oracle.af(s, a, b))
            << "AF[" << a << "," << b << "] at " << m.stateName(s);
        EXPECT_EQ(static_cast<bool>(ef[s]), oracle.ef(s, a, b))
            << "EF[" << a << "," << b << "] at " << m.stateName(s);
        EXPECT_EQ(static_cast<bool>(ag[s]), oracle.ag(s, a, b))
            << "AG[" << a << "," << b << "] at " << m.stateName(s);
        EXPECT_EQ(static_cast<bool>(eg[s]), oracle.eg(s, a, b))
            << "EG[" << a << "," << b << "] at " << m.stateName(s);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundedOracle,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace mui::ctl
