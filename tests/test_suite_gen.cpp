// Tests for systematic component-test generation (paper abstract): the
// integration loop records every executed counterexample test; the suite
// acts as a regression oracle for the component.

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "util/parse.hpp"
#include "muml/shuttle.hpp"
#include "synthesis/test_suite.hpp"
#include "synthesis/verifier.hpp"
#include "testing/legacy.hpp"
#include "testing/legacy_shuttle.hpp"

namespace mui::synthesis {
namespace {

namespace sh = muml::shuttle;
using test::Tables;

ComponentTestSuite recordFromCorrectRun(const Tables& t,
                                        const automata::Automaton& front) {
  testing::FirmwareShuttleLegacy firmware(t.signals, false);
  IntegrationConfig cfg;
  cfg.property = sh::kPatternConstraint;
  cfg.recordTests = true;
  const auto res = IntegrationVerifier(front, firmware, cfg).run();
  EXPECT_EQ(res.verdict, Verdict::ProvenCorrect);
  EXPECT_EQ(res.recordedTests.size(), 1u);
  return res.recordedTests[0];
}

TEST(TestSuiteGen, RecordsEveryExecutedTest) {
  Tables t;
  const auto front = sh::frontRoleAutomaton(t.signals, t.props);
  const auto suite = recordFromCorrectRun(t, front);
  ASSERT_GT(suite.size(), 0u);
  // Names carry the iteration and the counterexample kind.
  EXPECT_NE(suite.tests[0].name.find("iter"), std::string::npos);
  // Rendering mentions the monitored states.
  const std::string text = renderSuite(suite, *t.signals);
  EXPECT_NE(text.find("noConvoy"), std::string::npos);
}

TEST(TestSuiteGen, SameRevisionPassesTheSuite) {
  Tables t;
  const auto front = sh::frontRoleAutomaton(t.signals, t.props);
  const auto suite = recordFromCorrectRun(t, front);
  testing::FirmwareShuttleLegacy again(t.signals, false);
  const auto run = runSuite(suite, again, *t.signals);
  EXPECT_TRUE(run.allPassed())
      << (run.failures.empty() ? "" : run.failures[0]);
  EXPECT_EQ(run.passed, suite.size());
}

TEST(TestSuiteGen, RegressionIsDetected) {
  // The faulty revision must fail the suite recorded from the shipped one —
  // without re-running verification.
  Tables t;
  const auto front = sh::frontRoleAutomaton(t.signals, t.props);
  const auto suite = recordFromCorrectRun(t, front);
  testing::FirmwareShuttleLegacy regressed(t.signals, true);
  const auto run = runSuite(suite, regressed, *t.signals);
  EXPECT_FALSE(run.allPassed());
  EXPECT_LT(run.passed, suite.size());
  // The failure message points at the first divergence.
  ASSERT_FALSE(run.failures.empty());
  EXPECT_NE(run.failures[0].find("iter"), std::string::npos);
}

TEST(TestSuiteGen, AutomatonBackedComponentsWorkToo) {
  Tables t;
  const auto front = sh::frontRoleAutomaton(t.signals, t.props);
  testing::AutomatonLegacy legacy(sh::correctRearLegacy(t.signals, t.props));
  IntegrationConfig cfg;
  cfg.property = sh::kPatternConstraint;
  cfg.recordTests = true;
  const auto res = IntegrationVerifier(front, legacy, cfg).run();
  ASSERT_EQ(res.verdict, Verdict::ProvenCorrect);
  const auto& suite = res.recordedTests[0];
  // The reference automaton implements the same behavior as the firmware:
  // it passes the suite recorded from its own run...
  testing::AutomatonLegacy again(sh::correctRearLegacy(t.signals, t.props));
  EXPECT_TRUE(runSuite(suite, again, *t.signals).allPassed());
  // ... and the firmware (behaviorally identical) passes it as well.
  testing::FirmwareShuttleLegacy fw(t.signals, false);
  EXPECT_TRUE(runSuite(suite, fw, *t.signals).allPassed());
}

TEST(TestSuiteGen, SerializationRoundTrip) {
  Tables t;
  const auto front = sh::frontRoleAutomaton(t.signals, t.props);
  const auto suite = recordFromCorrectRun(t, front);
  const std::string text = writeSuite(suite, *t.signals);
  const auto parsed = parseSuite(text, *t.signals);
  ASSERT_EQ(parsed.size(), suite.size());
  // Structural identity...
  for (std::size_t i = 0; i < suite.size(); ++i) {
    EXPECT_EQ(parsed.tests[i].name, suite.tests[i].name);
    EXPECT_EQ(parsed.tests[i].expectedKind, suite.tests[i].expectedKind);
    EXPECT_EQ(parsed.tests[i].steps.size(), suite.tests[i].steps.size());
    for (std::size_t j = 0; j < suite.tests[i].steps.size(); ++j) {
      EXPECT_EQ(parsed.tests[i].steps[j], suite.tests[i].steps[j]);
    }
    EXPECT_EQ(parsed.tests[i].expected.stateNames,
              suite.tests[i].expected.stateNames);
    EXPECT_EQ(parsed.tests[i].expected.blocked,
              suite.tests[i].expected.blocked);
  }
  // ... and idempotence of the writer.
  EXPECT_EQ(writeSuite(parsed, *t.signals), text);
  // The reloaded suite is as discriminating as the original.
  testing::FirmwareShuttleLegacy good(t.signals, false);
  EXPECT_TRUE(runSuite(parsed, good, *t.signals).allPassed());
  testing::FirmwareShuttleLegacy bad(t.signals, true);
  EXPECT_FALSE(runSuite(parsed, bad, *t.signals).allPassed());
}

TEST(TestSuiteGen, ParseErrors) {
  Tables t;
  EXPECT_THROW(parseSuite("garbage", *t.signals), util::ParseError);
  EXPECT_THROW(parseSuite("suite-test \"x\" kind=confirmed\nweird\nend",
                          *t.signals),
               util::ParseError);
  // A blocked test whose observed run is malformed.
  EXPECT_THROW(
      parseSuite("suite-test \"x\" kind=blocked\nend", *t.signals),
      util::ParseError);
}

}  // namespace
}  // namespace mui::synthesis
