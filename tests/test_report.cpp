// synthesis/report.hpp: verdict names, and golden-string tests pinning the
// exact journal/summary rendering (the examples and the batch report lean
// on this shape staying stable).

#include <gtest/gtest.h>

#include <string>

#include "automata/rename.hpp"
#include "muml/integration.hpp"
#include "muml/loader.hpp"
#include "synthesis/report.hpp"
#include "synthesis/verifier.hpp"
#include "testing/legacy.hpp"

namespace {

using namespace mui;
using synthesis::IntegrationResult;
using synthesis::IterationRecord;
using synthesis::Verdict;

TEST(VerdictName, CoversEveryVerdict) {
  EXPECT_STREQ(synthesis::verdictName(Verdict::ProvenCorrect), "proven");
  EXPECT_STREQ(synthesis::verdictName(Verdict::RealError), "real-error");
  EXPECT_STREQ(synthesis::verdictName(Verdict::IterationLimit), "iter-limit");
  EXPECT_STREQ(synthesis::verdictName(Verdict::Unsupported), "unsupported");
  EXPECT_STREQ(synthesis::verdictName(Verdict::Cancelled), "cancelled");
}

/// A fabricated two-iteration run: a deadlock counterexample in iteration
/// 1, a passing check in iteration 2.
IntegrationResult provenRun() {
  IntegrationResult res;
  res.verdict = Verdict::ProvenCorrect;
  res.explanation = "closed model satisfies the property";
  res.iterations = 2;
  res.totalTestPeriods = 4;
  res.totalLearnedFacts = 2;

  IterationRecord it1;
  it1.iteration = 1;
  it1.modelStates = 1;
  it1.closureStates = 2;
  it1.productStates = 6;
  it1.cexWasDeadlock = true;
  it1.cexLength = 3;
  it1.testPeriods = 4;
  it1.learnedFacts = 2;
  res.journal.push_back(it1);

  IterationRecord it2;
  it2.iteration = 2;
  it2.modelStates = 3;
  it2.modelTransitions = 2;
  it2.modelForbidden = 1;
  it2.closureStates = 4;
  it2.productStates = 12;
  it2.checkPassed = true;
  res.journal.push_back(it2);
  return res;
}

TEST(RenderJournal, GoldenProvenRun) {
  const std::string expected =
      "iter  model S/T/F  closure S  product S  cex       cex len  "
      "test periods  learned\n"
      "----  -----------  ---------  ---------  --------  -------  "
      "------------  -------\n"
      "1     1/0/0        2          6          deadlock  3        "
      "4             2\n"
      "2     3/2/1        4          12         -         0        "
      "0             0\n";
  EXPECT_EQ(synthesis::renderJournal(provenRun()), expected);
}

TEST(RenderSummary, GoldenProvenRun) {
  EXPECT_EQ(synthesis::renderSummary(provenRun()),
            "verdict: proven (closed model satisfies the property) after 2 "
            "iterations, 4 test periods, 2 learned facts; learned model(s): "
            "0 states, 0 transitions, 0 refusals\n");
}

TEST(RenderSummary, GoldenRealErrorRunWithUnknownAtoms) {
  IntegrationResult res;
  res.verdict = Verdict::RealError;
  res.explanation = "realizable property violation";
  res.iterations = 3;
  res.totalTestPeriods = 5;
  res.totalLearnedFacts = 4;
  res.unknownAtoms = {"device.typo"};
  EXPECT_EQ(synthesis::renderSummary(res),
            "verdict: real-error (realizable property violation) after 3 "
            "iterations, 5 test periods, 4 learned facts; learned model(s): "
            "0 states, 0 transitions, 0 refusals\n"
            "WARNING: property atoms matching no proposition: device.typo\n");
}

TEST(RenderJournal, PropertyCexRowSaysProperty) {
  IntegrationResult res;
  IterationRecord rec;
  rec.iteration = 1;
  rec.cexWasDeadlock = false;
  rec.cexLength = 2;
  res.journal.push_back(rec);
  EXPECT_NE(synthesis::renderJournal(res).find("property"), std::string::npos);
}

// Smoke over a real run: the shipped watchdog scenario with the compliant
// device renders a journal with the pinned header and a proven summary.
TEST(Report, RealWatchdogRunRendersProven) {
  const auto model =
      muml::loadModelFile(std::string(MUI_MODELS_DIR) + "/watchdog.muml");
  const auto& pattern = model.patterns.at("Watchdog");
  const auto scenario = muml::makeIntegrationScenario(pattern, /*roleIdx=*/1,
                                                      model.signals,
                                                      model.props);
  mui::testing::AutomatonLegacy legacy(automata::withInstanceName(
      model.automata.at("deviceCompliant"), "device"));
  synthesis::IntegrationConfig cfg;
  cfg.property = scenario.property;
  const auto res = synthesis::runIntegration(scenario.context, legacy, cfg);
  ASSERT_EQ(res.verdict, Verdict::ProvenCorrect);
  EXPECT_EQ(synthesis::renderJournal(res).rfind("iter  model S/T/F", 0), 0u);
  EXPECT_EQ(synthesis::renderSummary(res).rfind("verdict: proven (", 0), 0u);
}

}  // namespace
