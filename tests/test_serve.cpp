// mui::serve — wire-protocol round-trips and whole-daemon behavior against
// the shipped models: submit/result round-trips with cache hits, deadline
// expiry, admission-control shedding, durable-cache survival across a
// server restart, the HTTP endpoints, and protocol error handling.

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "engine/job.hpp"
#include "obs/journal.hpp"
#include "obs/ulid.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/socket.hpp"

namespace {

using namespace mui;
using engine::Job;
using engine::JobStatus;

const std::string kWatchdog = std::string(MUI_MODELS_DIR) + "/watchdog.muml";
const std::string kRailcab = std::string(MUI_MODELS_DIR) + "/railcab.muml";

std::filesystem::path testDir(const std::string& name) {
  const auto dir =
      std::filesystem::temp_directory_path() / "mui_serve_tests" / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

Job watchdogJob(std::string name, std::string hidden) {
  Job job;
  job.name = std::move(name);
  job.modelPath = kWatchdog;
  job.pattern = "Watchdog";
  job.legacyRole = "device";
  job.hidden = std::move(hidden);
  return job;
}

Job railcabJob(std::string name, std::uint64_t timeoutMs = 0) {
  Job job;
  job.name = std::move(name);
  job.modelPath = kRailcab;
  job.pattern = "DistanceCoordination";
  job.legacyRole = "rearRole";
  job.hidden = "rearShipped";
  job.timeoutMs = timeoutMs;
  return job;
}

serve::ServeOptions localOptions() {
  serve::ServeOptions options;
  options.host = "127.0.0.1";
  options.port = 0;  // kernel-assigned
  options.threads = 2;
  options.version = "test";
  return options;
}

serve::SubmitOptions clientFor(const serve::Server& server) {
  serve::SubmitOptions options;
  options.port = server.port();
  options.clientName = "gtest";
  return options;
}

// ---------------------------------------------------------------- protocol

TEST(ServeProtocol, JobLineRoundTrips) {
  Job job = watchdogJob("wd", "deviceCompliant");
  job.formula = "AG x";
  job.timeoutMs = 1234;
  job.maxIterations = 7;
  const serve::Request req =
      serve::parseRequest(serve::writeJobLine(42, job));
  ASSERT_EQ(req.type, serve::Request::Type::Job);
  EXPECT_EQ(req.id, 42u);
  EXPECT_EQ(req.job.name, "wd");
  EXPECT_EQ(req.job.modelPath, kWatchdog);
  EXPECT_EQ(req.job.pattern, "Watchdog");
  EXPECT_EQ(req.job.legacyRole, "device");
  EXPECT_EQ(req.job.hidden, "deviceCompliant");
  EXPECT_EQ(req.job.formula, "AG x");
  EXPECT_EQ(req.job.timeoutMs, 1234u);
  EXPECT_EQ(req.job.maxIterations, 7u);
}

TEST(ServeProtocol, HelloEndAndMalformedLines) {
  const serve::Request hello =
      serve::parseRequest(serve::writeHelloLine("ci", 5000));
  ASSERT_EQ(hello.type, serve::Request::Type::Hello);
  EXPECT_EQ(hello.client, "ci");
  EXPECT_EQ(hello.deadlineMs, 5000u);
  EXPECT_EQ(serve::parseRequest(serve::writeEndLine()).type,
            serve::Request::Type::End);
  EXPECT_EQ(serve::parseRequest("not json").type,
            serve::Request::Type::Invalid);
  // A job without the required fields must not parse as a job.
  EXPECT_EQ(serve::parseRequest(R"({"schema":1,"type":"job","id":1})").type,
            serve::Request::Type::Invalid);
}

TEST(ServeProtocol, ResultAndControlRepliesRoundTrip) {
  engine::JobResult result;
  result.job = watchdogJob("wd", "deviceCompliant");
  result.status = JobStatus::Proven;
  result.explanation = "all good";
  result.iterations = 3;
  result.cacheHit = true;
  const serve::Response res =
      serve::parseResponse(serve::writeResultLine(9, result));
  ASSERT_EQ(res.type, serve::Response::Type::Result);
  EXPECT_EQ(res.id, 9u);
  EXPECT_EQ(res.result.status, JobStatus::Proven);
  EXPECT_EQ(res.result.explanation, "all good");
  EXPECT_EQ(res.result.iterations, 3u);
  EXPECT_TRUE(res.result.cacheHit);

  const serve::Response shed =
      serve::parseResponse(serve::writeShedLine(4, 250));
  ASSERT_EQ(shed.type, serve::Response::Type::Shed);
  EXPECT_EQ(shed.id, 4u);
  EXPECT_EQ(shed.retryAfterMs, 250u);

  const serve::Response done =
      serve::parseResponse(serve::writeDoneLine(10, 1, 4, 6));
  ASSERT_EQ(done.type, serve::Response::Type::Done);
  EXPECT_EQ(done.jobs, 10u);
  EXPECT_EQ(done.shed, 1u);
  EXPECT_EQ(done.cacheHits, 4u);
  EXPECT_EQ(done.cacheMisses, 6u);

  EXPECT_EQ(serve::parseResponse("garbage").type,
            serve::Response::Type::Invalid);
}

TEST(ServeProtocol, CorrelationFieldsRoundTrip) {
  // The ulid travels on the job line and comes back on the result line;
  // hello carries the client's trace context. All additive within schema 1.
  Job job = watchdogJob("wd", "deviceCompliant");
  job.ulid = "01ARZ3NDEKTSV4RRFFQ69G5FAV";
  const serve::Request req = serve::parseRequest(serve::writeJobLine(7, job));
  ASSERT_EQ(req.type, serve::Request::Type::Job);
  EXPECT_EQ(req.job.ulid, "01ARZ3NDEKTSV4RRFFQ69G5FAV");

  engine::JobResult result;
  result.job = job;
  result.status = JobStatus::Proven;
  result.presolved = true;
  const serve::Response res =
      serve::parseResponse(serve::writeResultLine(7, result));
  ASSERT_EQ(res.type, serve::Response::Type::Result);
  EXPECT_EQ(res.result.job.ulid, "01ARZ3NDEKTSV4RRFFQ69G5FAV");
  EXPECT_TRUE(res.result.presolved);

  const serve::Request hello =
      serve::parseRequest(serve::writeHelloLine("ci", 0, "nightly-42"));
  ASSERT_EQ(hello.type, serve::Request::Type::Hello);
  EXPECT_EQ(hello.trace, "nightly-42");

  // A ulid-less job line still parses (v1 clients).
  Job bare = watchdogJob("wd", "deviceCompliant");
  const serve::Request old = serve::parseRequest(serve::writeJobLine(8, bare));
  ASSERT_EQ(old.type, serve::Request::Type::Job);
  EXPECT_TRUE(old.job.ulid.empty());
}

// ----------------------------------------------------------- daemon basics

TEST(ServeServer, RoundTripsJobsAndServesDuplicatesFromCache) {
  serve::Server server(localOptions());
  server.start();

  const std::vector<Job> jobs = {
      watchdogJob("wd-1", "deviceCompliant"),
      watchdogJob("wd-2", "deviceSlow"),
      watchdogJob("wd-1-again", "deviceCompliant"),  // duplicate of wd-1
  };
  const serve::SubmitOutcome outcome =
      serve::submitJobs(jobs, clientFor(server));

  ASSERT_EQ(outcome.report.results.size(), 3u);
  EXPECT_EQ(outcome.report.results[0].status, JobStatus::Proven);
  EXPECT_EQ(outcome.report.results[1].status, JobStatus::Proven);
  EXPECT_EQ(outcome.report.results[2].status, JobStatus::Proven);
  // Results arrive in completion order but must be re-associated by id.
  EXPECT_EQ(outcome.report.results[0].job.name, "wd-1");
  EXPECT_EQ(outcome.report.results[2].job.name, "wd-1-again");
  EXPECT_GE(outcome.serverCacheHits, 1u);  // the duplicate
  EXPECT_EQ(outcome.serverCacheHits + outcome.serverCacheMisses, 3u);

  server.requestDrain();
  server.wait();
  const serve::ServeStats stats = server.stats();
  EXPECT_EQ(stats.jobsAccepted, 3u);
  EXPECT_EQ(stats.jobsCompleted, 3u);
  EXPECT_EQ(stats.connections, 1u);
}

TEST(ServeServer, JobDeadlineExpiryYieldsTimeout) {
  serve::Server server(localOptions());
  server.start();
  const std::vector<Job> jobs = {railcabJob("impatient", /*timeoutMs=*/1)};
  const serve::SubmitOutcome outcome =
      serve::submitJobs(jobs, clientFor(server));
  ASSERT_EQ(outcome.report.results.size(), 1u);
  EXPECT_EQ(outcome.report.results[0].status, JobStatus::Timeout);
}

TEST(ServeServer, ClientHelloDeadlineAppliesToJobsWithoutTheirOwn) {
  serve::Server server(localOptions());
  server.start();
  serve::SubmitOptions options = clientFor(server);
  options.deadlineMs = 1;  // sent in the hello, adopted server-side
  const std::vector<Job> jobs = {railcabJob("inherits-deadline")};
  const serve::SubmitOutcome outcome = serve::submitJobs(jobs, options);
  ASSERT_EQ(outcome.report.results.size(), 1u);
  EXPECT_EQ(outcome.report.results[0].status, JobStatus::Timeout);
}

TEST(ServeServer, ServerMaxTimeoutCapsEveryJob) {
  serve::ServeOptions options = localOptions();
  options.maxTimeoutMs = 1;
  serve::Server server(options);
  server.start();
  // The job asks for a generous deadline; the server-wide cap wins.
  const std::vector<Job> jobs = {railcabJob("capped", /*timeoutMs=*/600000)};
  const serve::SubmitOutcome outcome =
      serve::submitJobs(jobs, clientFor(server));
  ASSERT_EQ(outcome.report.results.size(), 1u);
  EXPECT_EQ(outcome.report.results[0].status, JobStatus::Timeout);
}

TEST(ServeServer, AdmissionControlShedsBeyondTheQueueLimit) {
  serve::ServeOptions options = localOptions();
  options.threads = 1;
  options.queueLimit = 1;
  options.retryAfterMs = 10;
  serve::Server server(options);
  server.start();

  // Both job lines land in one write and are parsed back-to-back, so the
  // second arrives while the first is still pending: it must be shed, and
  // with retries disabled the client reports it as a load-shed row.
  serve::SubmitOptions client = clientFor(server);
  client.maxRetryRounds = 0;
  const std::vector<Job> jobs = {railcabJob("holds-the-queue", 2000),
                                 railcabJob("gets-shed", 2000)};
  const serve::SubmitOutcome outcome = serve::submitJobs(jobs, client);

  ASSERT_EQ(outcome.report.results.size(), 2u);
  EXPECT_EQ(outcome.report.results[0].job.name, "holds-the-queue");
  EXPECT_EQ(outcome.report.results[1].status, JobStatus::EngineError);
  EXPECT_EQ(outcome.report.results[1].explanation.rfind("load-shed", 0), 0u);
  EXPECT_EQ(server.stats().jobsShed, 1u);
}

TEST(ServeServer, ShedJobsSucceedOnRetry) {
  serve::ServeOptions options = localOptions();
  options.threads = 1;
  options.queueLimit = 1;
  options.retryAfterMs = 10;
  serve::Server server(options);
  server.start();

  serve::SubmitOptions client = clientFor(server);
  client.maxRetryRounds = 50;
  const std::vector<Job> jobs = {watchdogJob("a", "deviceCompliant"),
                                 watchdogJob("b", "deviceSlow"),
                                 watchdogJob("c", "deviceCompliant")};
  const serve::SubmitOutcome outcome = serve::submitJobs(jobs, client);
  for (const auto& result : outcome.report.results) {
    EXPECT_EQ(result.status, JobStatus::Proven) << result.job.name;
  }
}

// ------------------------------------------------------ restart persistence

TEST(ServeServer, DurableCacheAnswersAcrossARestart) {
  const auto dir = testDir("restart");
  serve::ServeOptions options = localOptions();
  options.cachePath = (dir / "cache.jsonl").string();
  options.fsyncCache = false;  // test speed; durability is covered elsewhere

  const std::vector<Job> jobs = {watchdogJob("wd-1", "deviceCompliant"),
                                 watchdogJob("wd-2", "deviceSlow")};
  {
    serve::Server first(options);
    first.start();
    const serve::SubmitOutcome cold =
        serve::submitJobs(jobs, clientFor(first));
    EXPECT_EQ(cold.serverCacheMisses, 2u);
    first.requestDrain();
    first.wait();
  }

  // A brand-new process-equivalent: fresh Server, same log file.
  serve::Server second(options);
  second.start();
  EXPECT_EQ(second.stats().persistentReplayed, 2u);
  const serve::SubmitOutcome warm =
      serve::submitJobs(jobs, clientFor(second));
  EXPECT_EQ(warm.serverCacheHits, 2u);
  EXPECT_EQ(warm.serverCacheMisses, 0u);
  for (const auto& result : warm.report.results) {
    EXPECT_TRUE(result.cacheHit) << result.job.name;
    EXPECT_EQ(result.status, JobStatus::Proven);
  }
}

// ------------------------------------------------------------- http + misc

std::string httpGet(std::uint16_t port, const std::string& path) {
  serve::Fd fd = serve::connectTcp("127.0.0.1", port);
  serve::writeAll(fd.get(),
                  "GET " + path + " HTTP/1.0\r\nHost: localhost\r\n\r\n");
  std::string response;
  serve::LineReader reader(fd.get());
  while (const auto line = reader.next()) {
    response += *line;
    response += '\n';
  }
  return response;
}

TEST(ServeServer, HttpEndpointsShareThePort) {
  serve::Server server(localOptions());
  server.start();
  // Run one job so the serve counters are non-zero in /metrics.
  serve::submitJobs({watchdogJob("wd", "deviceCompliant")}, clientFor(server));

  const std::string healthz = httpGet(server.port(), "/healthz");
  EXPECT_NE(healthz.find("200 OK"), std::string::npos);
  EXPECT_NE(healthz.find("ok"), std::string::npos);

  const std::string metrics = httpGet(server.port(), "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("mui_serve_jobs_total"), std::string::npos);
  EXPECT_NE(metrics.find("mui_serve_connections_total"), std::string::npos);

  const std::string stats = httpGet(server.port(), "/stats");
  EXPECT_NE(stats.find("\"type\":\"stats\""), std::string::npos);
  EXPECT_NE(stats.find("\"jobsAccepted\":1"), std::string::npos);

  const std::string missing = httpGet(server.port(), "/no-such-endpoint");
  EXPECT_NE(missing.find("404"), std::string::npos);
}

TEST(ServeServer, DaemonAdoptsClientUlidOrMintsItsOwn) {
  serve::Server server(localOptions());
  server.start();
  serve::Fd fd = serve::connectTcp("127.0.0.1", server.port());
  serve::LineReader reader(fd.get());
  serve::writeAll(fd.get(), serve::writeHelloLine("gtest", 0) + "\n");
  ASSERT_TRUE(reader.next().has_value());  // welcome

  // A well-formed client ulid is echoed back on the result line...
  Job withUlid = watchdogJob("wd-ulid", "deviceCompliant");
  withUlid.ulid = obs::newUlid();
  // ...a malformed one is replaced by a daemon-minted ULID.
  Job withGarbage = watchdogJob("wd-garbage", "deviceSlow");
  withGarbage.ulid = "not-a-ulid";
  serve::writeAll(fd.get(), serve::writeJobLine(1, withUlid) + "\n" +
                                serve::writeJobLine(2, withGarbage) + "\n" +
                                serve::writeEndLine() + "\n");
  std::string echoed;
  std::string minted;
  while (const auto line = reader.next()) {
    const serve::Response res = serve::parseResponse(*line);
    if (res.type == serve::Response::Type::Result) {
      (res.id == 1 ? echoed : minted) = res.result.job.ulid;
    }
    if (res.type == serve::Response::Type::Done) break;
  }
  EXPECT_EQ(echoed, withUlid.ulid);
  EXPECT_NE(minted, "not-a-ulid");
  EXPECT_TRUE(obs::looksLikeUlid(minted)) << minted;
}

TEST(ServeServer, JobsEndpointReportsInflightJobsWithPhase) {
  serve::ServeOptions options = localOptions();
  options.threads = 1;  // one worker: later jobs are visibly queued
  serve::Server server(options);
  server.start();

  // Idle daemon: a parseable payload with an empty jobs array. (The raw
  // helper keeps the headers; the JSON body starts at the first brace.)
  const std::string idle = httpGet(server.port(), "/jobs");
  const auto idleObj = obs::parseFlatJson(idle.substr(idle.find('{')));
  ASSERT_TRUE(idleObj.has_value()) << idle;
  EXPECT_EQ(idleObj->at("inflight").asUint(), 0u);
  const auto idleRows = obs::parseFlatJsonArray(idleObj->at("jobs").text);
  ASSERT_TRUE(idleRows.has_value());
  EXPECT_TRUE(idleRows->empty());

  // Pipeline several distinct jobs (distinct maxIterations defeats the
  // result cache) through one worker, then catch them on /jobs while the
  // first ones still run. The submitter runs in the background because
  // submitJobs blocks until every result arrived.
  std::vector<Job> jobs;
  for (int i = 0; i < 8; ++i) {
    Job job = railcabJob("inflight-" + std::to_string(i));
    job.maxIterations = 1000 + i;
    jobs.push_back(std::move(job));
  }
  std::thread submitter(
      [&] { serve::submitJobs(jobs, clientFor(server)); });

  bool sawRow = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!sawRow && std::chrono::steady_clock::now() < deadline) {
    const std::string live = httpGet(server.port(), "/jobs");
    const auto obj = obs::parseFlatJson(live.substr(live.find('{')));
    ASSERT_TRUE(obj.has_value()) << live;
    const auto rows = obs::parseFlatJsonArray(obj->at("jobs").text);
    ASSERT_TRUE(rows.has_value()) << live;
    for (const auto& row : *rows) {
      EXPECT_TRUE(obs::looksLikeUlid(row.at("ulid").text));
      EXPECT_EQ(row.at("name").text.rfind("inflight-", 0), 0u);
      EXPECT_EQ(row.at("client").text, "gtest");
      EXPECT_FALSE(row.at("phase").text.empty());
      EXPECT_FALSE(row.at("disposition").text.empty());
      ASSERT_NE(row.find("queuedMs"), row.end());
      ASSERT_NE(row.find("runMs"), row.end());
      sawRow = true;
    }
    if (!sawRow) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  submitter.join();
  EXPECT_TRUE(sawRow) << "no in-flight job ever appeared on /jobs";
  // After the batch drained, the registry is empty again.
  const std::string after = httpGet(server.port(), "/jobs");
  const auto afterObj = obs::parseFlatJson(after.substr(after.find('{')));
  ASSERT_TRUE(afterObj.has_value());
  EXPECT_EQ(afterObj->at("inflight").asUint(), 0u);
}

TEST(ServeServer, TraceEndpointServesTheDaemonRing) {
  serve::Server server(localOptions());
  server.start();
  serve::submitJobs({watchdogJob("wd", "deviceCompliant")},
                    clientFor(server));
  const std::string trace = httpGet(server.port(), "/trace");
  EXPECT_NE(trace.find("200 OK"), std::string::npos);
  EXPECT_NE(trace.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(trace.find("\"muiEpochUnixNs\":"), std::string::npos);
  EXPECT_NE(trace.find("mui-serve"), std::string::npos);
}

TEST(ServeServer, MalformedLinesGetAnErrorReplyAndTheSessionSurvives) {
  serve::Server server(localOptions());
  server.start();

  serve::Fd fd = serve::connectTcp("127.0.0.1", server.port());
  serve::LineReader reader(fd.get());
  serve::writeAll(fd.get(), "this is not a protocol line\n");
  const auto errorLine = reader.next();
  ASSERT_TRUE(errorLine.has_value());
  EXPECT_EQ(serve::parseResponse(*errorLine).type,
            serve::Response::Type::Error);

  // The connection is still usable afterwards.
  serve::writeAll(fd.get(), serve::writeJobLine(
                                1, watchdogJob("wd", "deviceCompliant")) +
                                "\n" + serve::writeEndLine() + "\n");
  bool sawResult = false;
  bool sawDone = false;
  while (const auto line = reader.next()) {
    const serve::Response res = serve::parseResponse(*line);
    if (res.type == serve::Response::Type::Result) {
      sawResult = true;
      EXPECT_EQ(res.result.status, JobStatus::Proven);
    }
    if (res.type == serve::Response::Type::Done) {
      sawDone = true;
      break;
    }
  }
  EXPECT_TRUE(sawResult);
  EXPECT_TRUE(sawDone);
  EXPECT_GE(server.stats().protocolErrors, 1u);
}

TEST(ServeServer, DrainingDaemonShedsNewJobs) {
  serve::Server server(localOptions());
  server.start();
  serve::Fd fd = serve::connectTcp("127.0.0.1", server.port());
  serve::LineReader reader(fd.get());
  // Handshake first: a freshly connected socket may still sit unaccepted
  // in the listen backlog, and a draining accept loop never picks it up.
  serve::writeAll(fd.get(), serve::writeHelloLine("gtest", 0) + "\n");
  const auto welcome = reader.next();
  ASSERT_TRUE(welcome.has_value());
  ASSERT_EQ(serve::parseResponse(*welcome).type,
            serve::Response::Type::Welcome);
  server.requestDrain();

  serve::writeAll(fd.get(), serve::writeJobLine(
                                1, watchdogJob("wd", "deviceCompliant")) +
                                "\n");
  const auto line = reader.next();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(serve::parseResponse(*line).type, serve::Response::Type::Shed);
  fd.reset();
  server.wait();
}

}  // namespace
