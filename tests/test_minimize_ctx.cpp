// The minimizeContext option must be verdict-invariant: replacing the
// context by its bisimulation quotient changes sizes and names but never
// the outcome or the soundness of the loop.

#include <gtest/gtest.h>

#include "automata/minimize.hpp"
#include "automata/random.hpp"
#include "helpers.hpp"
#include "muml/shuttle.hpp"
#include "synthesis/verifier.hpp"
#include "testing/legacy.hpp"
#include "testing/legacy_shuttle.hpp"

namespace mui::synthesis {
namespace {

namespace sh = muml::shuttle;
using test::Tables;

TEST(MinimizeContext, ShuttleVerdictsUnchanged) {
  for (const bool faulty : {false, true}) {
    Tables t;
    const auto front = sh::frontRoleAutomaton(t.signals, t.props);
    testing::FirmwareShuttleLegacy legacy(t.signals, faulty);
    IntegrationConfig cfg;
    cfg.property = sh::kPatternConstraint;
    cfg.minimizeContext = true;
    const auto res = IntegrationVerifier(front, legacy, cfg).run();
    EXPECT_EQ(res.verdict, faulty ? Verdict::RealError
                                  : Verdict::ProvenCorrect)
        << res.explanation;
  }
}

class MinCtxAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MinCtxAgreement, SameVerdictWithAndWithoutQuotient) {
  Tables t;
  automata::RandomSpec spec;
  spec.states = 7;
  spec.seed = GetParam();
  spec.name = "lg";
  const auto hidden = automata::randomAutomaton(spec, t.signals, t.props);
  const auto context = automata::mirrored(
      automata::subAutomaton(hidden, 60, GetParam() + 3, "sub"), "ctx");

  testing::AutomatonLegacy l1(hidden);
  const auto plain = IntegrationVerifier(context, l1, {}).run();
  testing::AutomatonLegacy l2(hidden);
  IntegrationConfig cfg;
  cfg.minimizeContext = true;
  const auto quotient = IntegrationVerifier(context, l2, cfg).run();
  EXPECT_EQ(plain.verdict, quotient.verdict) << quotient.explanation;
  // The quotient context can only shrink the products.
  if (!plain.journal.empty() && !quotient.journal.empty()) {
    EXPECT_LE(quotient.journal.front().productStates,
              plain.journal.front().productStates);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinCtxAgreement,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace mui::synthesis
