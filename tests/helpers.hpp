#pragma once
// Shared helpers for the MUI test suite.

#include <initializer_list>
#include <memory>
#include <string>

#include "automata/automaton.hpp"
#include "automata/signals.hpp"

namespace mui::test {

struct Tables {
  automata::SignalTableRef signals = std::make_shared<automata::SignalTable>();
  automata::SignalTableRef props = std::make_shared<automata::SignalTable>();
};

/// Interns every name and returns the resulting set.
inline automata::SignalSet sigs(automata::SignalTable& table,
                                std::initializer_list<const char*> names) {
  automata::SignalSet out;
  for (const char* n : names) out.set(table.intern(n));
  return out;
}

/// Builds an interaction from input/output signal names.
inline automata::Interaction ia(automata::SignalTable& table,
                                std::initializer_list<const char*> in,
                                std::initializer_list<const char*> out) {
  return {sigs(table, in), sigs(table, out)};
}

/// The idle step (∅, ∅).
inline automata::Interaction idle() { return {}; }

}  // namespace mui::test
