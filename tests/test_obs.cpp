// Unit tests for the observability subsystem (src/obs/): span tracing
// (nesting, per-thread tracks, ring overwrite, disabled-guard), the
// metrics registry (bucket boundaries, renderer goldens, info metrics),
// the run journal (schema round-trip through the flat JSON parser,
// v1/v2 interleave), correlation ULIDs, live job progress, journal
// aggregation for `mui stats` — including a real integration run — and
// the `--baseline` trend gate.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "helpers.hpp"
#include "muml/shuttle.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/process.hpp"
#include "obs/progress.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"
#include "obs/trend.hpp"
#include "obs/ulid.hpp"
#include "synthesis/verifier.hpp"
#include "testing/legacy.hpp"
#include "util/json.hpp"

namespace mui::obs {
namespace {

/// Restores the tracer to its default (disabled, empty) state so tests
/// never leak events into each other.
struct TracerGuard {
  TracerGuard() { Tracer::enable(); }
  ~TracerGuard() {
    Tracer::disable();
    Tracer::clear();
  }
};

TEST(Trace, DisabledSpansRecordNothing) {
  Tracer::disable();
  Tracer::clear();
  {
    const ObsSpan a("closure");
    const ObsSpan b(std::string("iteration"), 7);
  }
  EXPECT_EQ(Tracer::eventCount(), 0u);
  EXPECT_EQ(Tracer::droppedEvents(), 0u);
  EXPECT_EQ(Tracer::chromeTrace().find("\"ph\":\"X\""), std::string::npos);
}

TEST(Trace, NestedSpansAreContained) {
  TracerGuard guard;
  {
    const ObsSpan outer("outer");
    {
      const ObsSpan inner("inner");
    }
  }
  ASSERT_EQ(Tracer::eventCount(), 2u);
  const std::string json = Tracer::chromeTrace();
  // Inner closes first, so it serializes first; both are complete events.
  const auto innerPos = json.find("\"name\":\"inner\"");
  const auto outerPos = json.find("\"name\":\"outer\"");
  ASSERT_NE(innerPos, std::string::npos);
  ASSERT_NE(outerPos, std::string::npos);
  EXPECT_LT(innerPos, outerPos);
  // The document is a loadable Chrome trace.
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
}

TEST(Trace, SpanArgLandsInArgs) {
  TracerGuard guard;
  { const ObsSpan span("iteration", 42); }
  EXPECT_NE(Tracer::chromeTrace().find("\"args\":{\"i\":42}"),
            std::string::npos);
}

TEST(Trace, ConcurrentWorkersGetDistinctNamedTracks) {
  TracerGuard guard;
  constexpr int kThreads = 4;
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([i, &ready] {
      setThreadName("worker-" + std::to_string(i));
      // Spin barrier: all workers record while truly concurrent.
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
      }
      for (int n = 0; n < 8; ++n) {
        const ObsSpan span("check");
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(Tracer::eventCount(), kThreads * 8u);
  const std::string json = Tracer::chromeTrace();
  for (int i = 0; i < kThreads; ++i) {
    EXPECT_NE(json.find("\"name\":\"worker-" + std::to_string(i) + "\""),
              std::string::npos)
        << "missing thread_name track for worker-" << i;
  }
}

TEST(Trace, RingDropsOldestEvents) {
  Tracer::disable();
  Tracer::clear();
  Tracer::enable(4);
  for (int i = 0; i < 10; ++i) {
    const ObsSpan span("span-" + std::to_string(i));
  }
  Tracer::disable();
  EXPECT_EQ(Tracer::eventCount(), 4u);
  EXPECT_EQ(Tracer::droppedEvents(), 6u);
  const std::string json = Tracer::chromeTrace();
  EXPECT_EQ(json.find("\"name\":\"span-0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"span-9\""), std::string::npos);
  Tracer::clear();
}

TEST(Metrics, HistogramBucketBoundaries) {
  EXPECT_EQ(Histogram::bucketIndex(0), 0u);
  EXPECT_EQ(Histogram::bucketIndex(1), 0u);
  EXPECT_EQ(Histogram::bucketIndex(2), 1u);
  EXPECT_EQ(Histogram::bucketIndex(3), 2u);
  EXPECT_EQ(Histogram::bucketIndex(4), 2u);
  EXPECT_EQ(Histogram::bucketIndex(5), 3u);
  EXPECT_EQ(Histogram::bucketIndex(1ull << 40), 40u);
  EXPECT_EQ(Histogram::bucketIndex((1ull << 40) + 1), 41u);
  // Everything past 2^62 lands in the +Inf bucket.
  EXPECT_EQ(Histogram::bucketIndex(~0ull), Histogram::kBuckets - 1);

  Histogram h;
  for (const std::uint64_t v : {1, 2, 3, 4, 5}) h.observe(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 15u);
  EXPECT_EQ(h.bucketCount(0), 1u);  // le 1: {1}
  EXPECT_EQ(h.bucketCount(1), 1u);  // le 2: {2}
  EXPECT_EQ(h.bucketCount(2), 2u);  // le 4: {3, 4}
  EXPECT_EQ(h.bucketCount(3), 1u);  // le 8: {5}
}

TEST(Metrics, PrometheusRendererGolden) {
  Registry reg;
  reg.counter("mui_test_pops_total", "States popped").add(3);
  reg.gauge("mui_test_depth", "Queue depth", "tasks").set(-2);
  Histogram& h = reg.histogram("mui_test_sizes", "Product sizes");
  h.observe(1);
  h.observe(3);
  EXPECT_EQ(reg.renderPrometheus(),
            "# HELP mui_test_depth Queue depth (tasks)\n"
            "# TYPE mui_test_depth gauge\n"
            "mui_test_depth -2\n"
            "# HELP mui_test_pops_total States popped\n"
            "# TYPE mui_test_pops_total counter\n"
            "mui_test_pops_total 3\n"
            "# HELP mui_test_sizes Product sizes\n"
            "# TYPE mui_test_sizes histogram\n"
            "mui_test_sizes_bucket{le=\"1\"} 1\n"
            "mui_test_sizes_bucket{le=\"2\"} 1\n"
            "mui_test_sizes_bucket{le=\"4\"} 2\n"
            "mui_test_sizes_bucket{le=\"+Inf\"} 2\n"
            "mui_test_sizes_sum 4\n"
            "mui_test_sizes_count 2\n");
}

TEST(Metrics, JsonRendererParsesAndCarriesValues) {
  Registry reg;
  reg.counter("c_total", "a counter").add(7);
  reg.histogram("h_sizes", "a histogram").observe(2);
  const std::string json = reg.renderJson();
  EXPECT_NE(json.find("\"name\":\"c_total\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":7"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"metrics\":["), std::string::npos);
}

TEST(Metrics, RegistryIsIdempotentAndKindChecked) {
  Registry reg;
  Counter& a = reg.counter("x_total", "first help wins");
  Counter& b = reg.counter("x_total", "ignored");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_THROW((void)reg.gauge("x_total", "wrong kind"), std::logic_error);
  a.add(5);
  reg.resetAll();
  EXPECT_EQ(a.value(), 0u);
}

TEST(Journal, EventRoundTripsThroughFlatParser) {
  Journal journal;
  journal.event("iteration", JsonObject()
                                 .s("run", "p/r/h")
                                 .u("iter", 3)
                                 .i("delta", -1)
                                 .f("checkMs", 1.25)
                                 .b("checkPassed", true)
                                 .s("note", "tab\there \"quoted\" \xE2\x9C\x93"));
  ASSERT_EQ(journal.eventCount(), 1u);
  const std::string line =
      journal.text().substr(0, journal.text().size() - 1);  // drop '\n'
  const auto obj = parseFlatJson(line);
  ASSERT_TRUE(obj.has_value());
  EXPECT_EQ(obj->at("schema").asUint(),
            static_cast<std::uint64_t>(kJournalSchemaVersion));
  EXPECT_EQ(obj->at("type").text, "iteration");
  EXPECT_EQ(obj->at("run").text, "p/r/h");
  EXPECT_EQ(obj->at("iter").asUint(), 3u);
  EXPECT_EQ(obj->at("delta").number, -1.0);
  EXPECT_EQ(obj->at("checkMs").number, 1.25);
  EXPECT_TRUE(obj->at("checkPassed").boolean);
  EXPECT_EQ(obj->at("note").text, "tab\there \"quoted\" \xE2\x9C\x93");
}

TEST(Journal, ParserRejectsMalformedAndKeepsNestedRaw) {
  EXPECT_FALSE(parseFlatJson("not json").has_value());
  EXPECT_FALSE(parseFlatJson("{\"a\":1} trailing").has_value());
  EXPECT_FALSE(parseFlatJson("{\"a\":}").has_value());
  const auto obj = parseFlatJson("{\"a\":{\"x\":[1,2]},\"b\":null}");
  ASSERT_TRUE(obj.has_value());
  EXPECT_EQ(obj->at("a").kind, JsonValue::Kind::Raw);
  EXPECT_EQ(obj->at("a").text, "{\"x\":[1,2]}");
  EXPECT_EQ(obj->at("b").kind, JsonValue::Kind::Null);
}

TEST(Journal, InvalidUtf8IsEscapedAsReplacement) {
  // A lone 0xFF byte is not valid UTF-8; the escaper must not emit it raw
  // (that would produce an unparseable JSON document).
  const std::string escaped = util::jsonEscape("a\xFF"
                                               "b");
  EXPECT_EQ(escaped, "a\\ufffdb");
  EXPECT_EQ(util::jsonEscape("ok \xE2\x9C\x93"), "ok \xE2\x9C\x93");
  EXPECT_EQ(util::jsonEscape("\x01"), "\\u0001");
}

TEST(Stats, AggregatesHandCraftedJournals) {
  Journal j1;
  j1.event("run_start", JsonObject().s("run", "a").u("legacies", 1));
  j1.event("iteration", JsonObject()
                            .s("run", "a")
                            .u("iter", 0)
                            .u("productStates", 10)
                            .u("learnedFacts", 2)
                            .u("testPeriods", 5)
                            .f("checkMs", 1.5)
                            .f("testMs", 0.5)
                            .b("checkPassed", false)
                            .s("cexKind", "deadlock")
                            .u("cexLength", 3));
  j1.event("verdict", JsonObject()
                          .s("run", "a")
                          .s("verdict", "proven")
                          .u("iterations", 1)
                          .u("learnedFacts", 2)
                          .u("testPeriods", 5));
  Journal j2;
  j2.event("job", JsonObject()
                      .s("run", "b")
                      .s("status", "real-error")
                      .s("worker", "worker-1")
                      .b("cacheHit", false)
                      .f("wallMs", 12.0)
                      .u("iterations", 4)
                      .u("learnedFacts", 0)
                      .u("testPeriods", 9));
  const auto report =
      aggregateJournals({j1.text(), j2.text(), "garbage line\n"});
  EXPECT_EQ(report.events, 4u);
  EXPECT_EQ(report.skipped, 1u);
  ASSERT_EQ(report.iterations.size(), 1u);
  EXPECT_EQ(report.iterations[0].run, "a");
  EXPECT_EQ(report.iterations[0].cexKind, "deadlock");
  ASSERT_EQ(report.runs.size(), 2u);
  EXPECT_EQ(report.runs[0].verdict, "proven");
  EXPECT_EQ(report.runs[1].verdict, "real-error");
  EXPECT_EQ(report.runs[1].worker, "worker-1");
  // Totals sum iteration events (job/verdict events carry per-run rollups).
  EXPECT_EQ(report.totalIterations, 1u);
  EXPECT_EQ(report.totalTestPeriods, 5u);

  const std::string text = renderStatsText(report);
  EXPECT_NE(text.find("deadlock/3"), std::string::npos);
  EXPECT_NE(text.find("runs=2"), std::string::npos);
  const std::string json = renderStatsJson(report);
  EXPECT_NE(json.find("\"totals\":"), std::string::npos);
  EXPECT_NE(json.find("\"verdict\":\"real-error\""), std::string::npos);
}

TEST(Stats, UnknownSchemaVersionIsSkippedNotFatal) {
  const auto report = aggregateJournals(
      {"{\"schema\":999,\"type\":\"iteration\",\"run\":\"x\"}\n"});
  EXPECT_EQ(report.skipped, 1u);
  EXPECT_TRUE(report.iterations.empty());
}

TEST(Stats, EmptyJournalYieldsEmptyReportWithoutSkips) {
  // An empty journal file (a run that crashed before its first event, or a
  // fresh --journal-out target) is valid input, not malformed lines.
  const auto report = aggregateJournals({""});
  EXPECT_EQ(report.events, 0u);
  EXPECT_EQ(report.skipped, 0u);
  EXPECT_TRUE(report.runs.empty());
  const std::string text = renderStatsText(report);
  EXPECT_NE(text.find("runs=0"), std::string::npos);
  EXPECT_NE(text.find("skipped=0"), std::string::npos);
}

TEST(Stats, WhitespaceOnlyLinesAreNotCountedAsMalformed) {
  // Blank lines, CRLF line endings, and indented blanks all occur in
  // hand-edited or concatenated journals; none of them are events and none
  // of them are parse failures.
  const auto report = aggregateJournals({"\n  \n\t\r\n   \t  \n"});
  EXPECT_EQ(report.events, 0u);
  EXPECT_EQ(report.skipped, 0u);
  // A real event surrounded by such lines still parses.
  Journal j;
  j.event("run_start", JsonObject().s("run", "r"));
  const auto mixed = aggregateJournals({"\n \n" + j.text() + "\r\n\t\n"});
  EXPECT_EQ(mixed.events, 1u);
  EXPECT_EQ(mixed.skipped, 0u);
  ASSERT_EQ(mixed.runs.size(), 1u);
  EXPECT_EQ(mixed.runs[0].run, "r");
}

TEST(Stats, RealIntegrationRunProducesAggregatableJournal) {
  namespace sh = muml::shuttle;
  test::Tables t;
  const auto front = sh::frontRoleAutomaton(t.signals, t.props);
  testing::AutomatonLegacy legacy(sh::correctRearLegacy(t.signals, t.props));
  Journal journal;
  synthesis::IntegrationConfig cfg;
  cfg.property = sh::kPatternConstraint;
  cfg.journal = &journal;
  cfg.runId = "shuttle/rearRole/correct";
  const auto res =
      synthesis::IntegrationVerifier(front, legacy, cfg).run();
  ASSERT_EQ(res.verdict, synthesis::Verdict::ProvenCorrect);

  // run_start + one event per iteration + verdict.
  EXPECT_EQ(journal.eventCount(), res.iterations + 2);
  const auto report = aggregateJournals({journal.text()});
  EXPECT_EQ(report.skipped, 0u);
  EXPECT_EQ(report.iterations.size(), res.iterations);
  ASSERT_EQ(report.runs.size(), 1u);
  EXPECT_EQ(report.runs[0].run, "shuttle/rearRole/correct");
  EXPECT_EQ(report.runs[0].verdict, "proven");
  EXPECT_EQ(report.totalLearnedFacts, res.totalLearnedFacts);
  EXPECT_EQ(report.totalTestPeriods, res.totalTestPeriods);
  // The final iteration passes the check; earlier ones report their
  // counterexample kind.
  EXPECT_TRUE(report.iterations.back().checkPassed);
}

TEST(Ulid, FormatAndUniqueness) {
  std::set<std::string> seen;
  for (int i = 0; i < 256; ++i) {
    const std::string id = newUlid();
    ASSERT_EQ(id.size(), 26u);
    EXPECT_TRUE(looksLikeUlid(id)) << id;
    seen.insert(id);
  }
  EXPECT_EQ(seen.size(), 256u);  // monotonic entropy: no collisions
  EXPECT_FALSE(looksLikeUlid(""));
  EXPECT_FALSE(looksLikeUlid("not-a-ulid"));
  EXPECT_FALSE(looksLikeUlid("01ARZ3NDEKTSV4RRFFQ69G5FA"));    // 25 chars
  EXPECT_FALSE(looksLikeUlid("01ARZ3NDEKTSV4RRFFQ69G5FAIL"));  // I/L excluded
}

TEST(Ulid, ConcurrentMintingStaysUnique) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 64;
  std::vector<std::vector<std::string>> minted(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &minted] {
      for (int i = 0; i < kPerThread; ++i) minted[t].push_back(newUlid());
    });
  }
  for (auto& t : threads) t.join();
  std::set<std::string> all;
  for (const auto& batch : minted) all.insert(batch.begin(), batch.end());
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kThreads * kPerThread));
}

TEST(Journal, ParseFlatJsonArray) {
  const auto rows = parseFlatJsonArray(
      "[\n{\"a\":1,\"s\":\"x\"},\n{\"a\":2,\"b\":true}\n]");
  ASSERT_TRUE(rows.has_value());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ(rows->at(0).at("a").asUint(), 1u);
  EXPECT_EQ(rows->at(0).at("s").text, "x");
  EXPECT_TRUE(rows->at(1).at("b").boolean);

  const auto empty = parseFlatJsonArray("[\n]");
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());

  EXPECT_FALSE(parseFlatJsonArray("").has_value());
  EXPECT_FALSE(parseFlatJsonArray("{\"a\":1}").has_value());
  EXPECT_FALSE(parseFlatJsonArray("[{\"a\":1},]").has_value());
  EXPECT_FALSE(parseFlatJsonArray("[{\"a\":1}] trailing").has_value());
}

TEST(Progress, PhaseDispositionIterationAreLiveAcrossThreads) {
  JobProgress progress;
  EXPECT_STREQ(progress.phase(), "queued");
  EXPECT_STREQ(progress.disposition(), "pending");
  EXPECT_EQ(progress.iteration(), 0u);
  std::thread writer([&progress] {
    progress.setPhase("check");
    progress.setDisposition("cache-hit");
    progress.setIteration(7);
  });
  writer.join();
  EXPECT_STREQ(progress.phase(), "check");
  EXPECT_STREQ(progress.disposition(), "cache-hit");
  EXPECT_EQ(progress.iteration(), 7u);
}

TEST(Metrics, InfoMetricRendersAsConstantOneWithLabels) {
  Registry reg;
  reg.setInfo("mui_build_info", "Build identity",
              {{"version", "1.2.3"}, {"git_sha", "abc\"def"}});
  const std::string prom = reg.renderPrometheus();
  // Format 0.0.4 has no info type, so the conventional gauge-valued-1
  // idiom is used; label values are escaped.
  EXPECT_NE(prom.find("# TYPE mui_build_info gauge"), std::string::npos);
  EXPECT_NE(
      prom.find(
          "mui_build_info{version=\"1.2.3\",git_sha=\"abc\\\"def\"} 1\n"),
      std::string::npos);
  const std::string json = reg.renderJson();
  EXPECT_NE(json.find("\"kind\":\"info\""), std::string::npos);
  EXPECT_NE(json.find("\"version\":\"1.2.3\""), std::string::npos);
}

TEST(Metrics, ProcessGaugesSampleFromProc) {
  Registry reg;
  setBuildInfo(reg, "9.9.9", "deadbee");
  sampleProcessGauges(reg);
  const std::string prom = reg.renderPrometheus();
  EXPECT_NE(prom.find("mui_build_info{version=\"9.9.9\",git_sha=\"deadbee\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("mui_process_uptime_seconds"), std::string::npos);
  EXPECT_NE(prom.find("mui_process_resident_memory_bytes"), std::string::npos);
  EXPECT_NE(prom.find("mui_process_open_fds"), std::string::npos);
}

TEST(Stats, InterleavedSchemaVersionsAllAggregate) {
  // One file mixing a v1 verdict, a v2 job (with ulid and presolved), and a
  // future-schema line: both supported versions count, only the unknown one
  // is skipped (a daemon restarted across an upgrade appends v2 after v1).
  const std::string mixed =
      "{\"schema\":1,\"type\":\"verdict\",\"run\":\"old\","
      "\"verdict\":\"proven\",\"iterations\":2}\n"
      "{\"schema\":2,\"type\":\"job\",\"run\":\"new\","
      "\"ulid\":\"01ARZ3NDEKTSV4RRFFQ69G5FAV\",\"status\":\"proven\","
      "\"cacheHit\":true,\"presolved\":false,\"wallMs\":3.5,"
      "\"iterations\":1}\n"
      "{\"schema\":99,\"type\":\"job\",\"run\":\"future\"}\n";
  const auto report = aggregateJournals({mixed});
  EXPECT_EQ(report.events, 2u);
  EXPECT_EQ(report.skipped, 1u);
  ASSERT_EQ(report.runs.size(), 2u);
  EXPECT_EQ(report.runs[0].run, "old");
  EXPECT_TRUE(report.runs[0].ulid.empty());
  EXPECT_EQ(report.runs[1].run, "new");
  EXPECT_EQ(report.runs[1].ulid, "01ARZ3NDEKTSV4RRFFQ69G5FAV");
  EXPECT_TRUE(report.runs[1].cacheHit);
  EXPECT_EQ(report.jobs, 1u);
  EXPECT_EQ(report.cacheHitJobs, 1u);
  EXPECT_EQ(report.presolvedJobs, 0u);
  ASSERT_EQ(report.jobWallMs.size(), 1u);
  EXPECT_EQ(report.jobWallMs[0], 3.5);
  // The ulid lands in the JSON rendering for downstream correlation.
  EXPECT_NE(renderStatsJson(report).find("01ARZ3NDEKTSV4RRFFQ69G5FAV"),
            std::string::npos);
}

/// Builds a StatsReport the way a daemon journal would: job events only.
StatsReport jobReport(std::uint64_t iterations, std::uint64_t presolved,
                      std::uint64_t cacheHits, std::uint64_t jobs,
                      double wallMs) {
  StatsReport r;
  for (std::uint64_t i = 0; i < jobs; ++i) {
    RunStat run;
    run.run = "job-" + std::to_string(i);
    run.iterations = iterations / jobs;
    r.runs.push_back(std::move(run));
    r.jobWallMs.push_back(wallMs);
  }
  r.jobs = jobs;
  r.presolvedJobs = presolved;
  r.cacheHitJobs = cacheHits;
  return r;
}

TEST(Trend, IdenticalReportsAreClean) {
  const StatsReport base = jobReport(40, 2, 3, 4, 25.0);
  const TrendReport trend = compareTrend(base, base);
  EXPECT_FALSE(trend.regressed);
  ASSERT_EQ(trend.metrics.size(), 6u);
  for (const TrendMetric& m : trend.metrics) {
    EXPECT_FALSE(m.regressed) << m.name;
    EXPECT_EQ(m.delta, 0.0) << m.name;
  }
  EXPECT_NE(renderTrendText(trend).find("VERDICT: ok"), std::string::npos);
  EXPECT_NE(renderTrendJson(trend).find("\"verdict\":\"ok\""),
            std::string::npos);
}

TEST(Trend, IterationGrowthBeyondThresholdRegresses) {
  const StatsReport base = jobReport(40, 2, 3, 4, 25.0);
  StatsReport current = jobReport(40, 2, 3, 4, 25.0);
  current.runs[0].iterations += 5;  // 40 -> 45: 12.5% > 10%
  const TrendReport trend = compareTrend(base, current);
  EXPECT_TRUE(trend.regressed);
  EXPECT_EQ(trend.metrics[0].name, "iterations");
  EXPECT_TRUE(trend.metrics[0].regressed);
  EXPECT_NE(renderTrendText(trend).find("REGRESSED"), std::string::npos);
  // A 20% allowance clears the same delta.
  TrendOptions loose;
  loose.thresholdPct = 20.0;
  EXPECT_FALSE(compareTrend(base, current, loose).regressed);
}

TEST(Trend, RateDropGatesAbsolutelyAndLatencyIsAdvisory) {
  const StatsReport base = jobReport(40, 4, 4, 8, 25.0);   // rates 50%
  StatsReport current = jobReport(40, 1, 1, 8, 250.0);     // rates 12.5%
  const TrendReport trend = compareTrend(base, current);
  EXPECT_TRUE(trend.regressed);
  EXPECT_EQ(trend.metrics[2].name, "presolveRate");
  EXPECT_TRUE(trend.metrics[2].regressed);   // dropped 37.5 pct points
  EXPECT_TRUE(trend.metrics[3].regressed);   // cacheHitRate likewise
  // p50 latency grew 10x but stays advisory without a latency threshold.
  EXPECT_EQ(trend.metrics[4].name, "p50WallMs");
  EXPECT_FALSE(trend.metrics[4].gated);
  EXPECT_FALSE(trend.metrics[4].regressed);
  // Opting in to latency gating flips it.
  TrendOptions gated;
  gated.latencyThresholdPct = 50.0;
  const TrendReport latencyTrend = compareTrend(base, current, gated);
  EXPECT_TRUE(latencyTrend.metrics[4].gated);
  EXPECT_TRUE(latencyTrend.metrics[4].regressed);
}

TEST(Trend, ZeroBaselineWithWorkCountsAsRegression) {
  const StatsReport base;  // empty: no runs, no jobs
  const StatsReport current = jobReport(10, 0, 0, 2, 5.0);
  const TrendReport trend = compareTrend(base, current);
  EXPECT_TRUE(trend.metrics[0].regressed);  // iterations 0 -> 10
  // Rates compare 0% to 0%-of-nothing sensibly: no division blowup.
  EXPECT_FALSE(trend.metrics[2].regressed);
}

}  // namespace
}  // namespace mui::obs
