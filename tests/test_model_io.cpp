// Tests for signal renaming, the .muml writer (loader round-trips), and the
// pattern-to-integration-scenario builder.

#include <gtest/gtest.h>

#include "automata/compose.hpp"
#include "automata/refine.hpp"
#include "automata/rename.hpp"
#include "helpers.hpp"
#include "muml/integration.hpp"
#include "muml/loader.hpp"
#include "muml/shuttle.hpp"
#include "muml/writer.hpp"
#include "synthesis/verifier.hpp"
#include "testing/legacy.hpp"

namespace mui::muml {
namespace {

namespace sh = shuttle;
using test::Tables;
using test::ia;

TEST(Rename, RemapsSignalsEverywhere) {
  Tables t;
  automata::Automaton a(t.signals, t.props, "m");
  a.addInput("in1");
  a.addOutput("out1");
  a.addOutput("keep");
  a.addState("s0");
  a.addState("s1");
  a.markInitial(0);
  a.addTransition(0, ia(*t.signals, {"in1"}, {"out1", "keep"}), 1);
  const auto r = automata::renameSignals(
      a, {{"in1", "in1_d"}, {"out1", "out1_u"}});
  EXPECT_TRUE(r.inputs().test(*t.signals->lookup("in1_d")));
  EXPECT_FALSE(r.inputs().test(*t.signals->lookup("in1")));
  EXPECT_TRUE(r.outputs().test(*t.signals->lookup("out1_u")));
  EXPECT_TRUE(r.outputs().test(*t.signals->lookup("keep")));
  const auto& tr = r.transitionsFrom(0)[0];
  EXPECT_EQ(tr.label, ia(*t.signals, {"in1_d"}, {"out1_u", "keep"}));
}

TEST(Rename, Validation) {
  Tables t;
  automata::Automaton a(t.signals, t.props, "m");
  a.addInput("x");
  a.addInput("y");
  a.addState("s");
  a.markInitial(0);
  EXPECT_THROW(automata::renameSignals(a, {{"ghost", "g"}}),
               std::invalid_argument);
  // Collision with an existing signal is rejected.
  EXPECT_THROW(automata::renameSignals(a, {{"x", "y"}}),
               std::invalid_argument);
}

TEST(Rename, PreservesBehaviorModuloNames) {
  // Renaming then renaming back is the identity (up to table growth).
  Tables t;
  const Model m = loadModel(R"mm(
    automaton p {
      input a; output b;
      initial s0;
      s0 -> s1 : a / b;
      s1 -> s0 : ;
    }
  )mm");
  const auto& orig = m.automata.at("p");
  const auto there = automata::renameSignals(orig, {{"a", "a2"}, {"b", "b2"}});
  const auto back = automata::renameSignals(there, {{"a2", "a"}, {"b2", "b"}});
  const auto alpha = automata::makeAlphabet(
      orig.inputs(), orig.outputs(), automata::InteractionMode::AtMostOneSignal);
  EXPECT_TRUE(automata::checkRefinement(back, orig, alpha).holds);
  EXPECT_TRUE(automata::checkRefinement(orig, back, alpha).holds);
}

TEST(Writer, AutomatonRoundTrip) {
  const char* text = R"mm(
    automaton ping {
      input ack; output req;
      state extra labels custom.prop;
      initial idle;
      idle -> waiting : / req;
      waiting -> idle : ack / ;
      waiting -> waiting : ;
      idle -> extra : ack / req;
    }
  )mm";
  const Model m1 = loadModel(text);
  const std::string written = writeModel(m1);
  const Model m2 = loadModel(written);
  const auto& a1 = m1.automata.at("ping");
  const auto& a2 = m2.automata.at("ping");
  EXPECT_EQ(a1.stateCount(), a2.stateCount());
  EXPECT_EQ(a1.transitionCount(), a2.transitionCount());
  EXPECT_EQ(a1.initialStates().size(), a2.initialStates().size());
  // Custom labels survive; hierarchical auto-labels are regenerated.
  const auto s2 = *a2.stateByName("extra");
  EXPECT_TRUE(a2.labels(s2).test(*m2.props->lookup("custom.prop")));
  // Semantic identity: every transition present in both (by names/labels).
  for (automata::StateId s = 0; s < a1.stateCount(); ++s) {
    const auto s2id = *a2.stateByName(a1.stateName(s));
    for (const auto& t : a1.transitionsFrom(s)) {
      // Signals were interned in separate tables; compare via names.
      const std::string rendered = a1.interactionToString(t.label);
      bool found = false;
      for (const auto& t2 : a2.transitionsFrom(s2id)) {
        if (a2.interactionToString(t2.label) == rendered &&
            a2.stateName(t2.to) == a1.stateName(t.to)) {
          found = true;
        }
      }
      EXPECT_TRUE(found) << rendered;
    }
  }
}

TEST(Writer, RtscAndPatternRoundTrip) {
  const char* text = R"mm(
    rtsc Responder {
      input req; output ack;
      clock c0;
      location idle;
      location busy invariant c0 <= 2;
      initial idle;
      idle -> busy : trigger req reset c0;
      busy -> idle : emit ack guard c0 >= 1;
    }
    rtsc Caller {
      input ack; output req;
      location quiet;
      initial quiet;
      quiet -> quiet : emit req;
      quiet -> quiet : trigger ack;
    }
    pattern PingPong {
      role caller uses Caller;
      role responder uses Responder invariant "AG (Responder.busy -> AF[1,3] Responder.idle)";
      connector channel delay 2 capacity 1 lossy routes req->req_d ack->ack_d;
      constraint "AG !deadlock";
    }
  )mm";
  const Model m1 = loadModel(text);
  const Model m2 = loadModel(writeModel(m1));

  // Statechart round-trip: identical compiled state spaces.
  Tables t1, t2;
  const auto c1 = m1.statecharts.at("Responder").compile(t1.signals, t1.props);
  const auto c2 = m2.statecharts.at("Responder").compile(t2.signals, t2.props);
  EXPECT_EQ(c1.stateCount(), c2.stateCount());
  EXPECT_EQ(c1.transitionCount(), c2.transitionCount());

  // Pattern round-trip.
  const auto& p1 = m1.patterns.at("PingPong");
  const auto& p2 = m2.patterns.at("PingPong");
  EXPECT_EQ(p1.constraint, p2.constraint);
  ASSERT_EQ(p2.roles.size(), 2u);
  EXPECT_EQ(p2.roles[1].invariant, p1.roles[1].invariant);
  EXPECT_EQ(p2.connector.kind, ConnectorSpec::Kind::Channel);
  EXPECT_EQ(p2.connector.channel.delay, 2u);
  EXPECT_TRUE(p2.connector.channel.lossy);
  ASSERT_EQ(p2.connector.channel.routes.size(), 2u);
  EXPECT_EQ(p2.connector.channel.routes[1].destination, "ack_d");

  // Idempotence: writing the reloaded model yields the same text.
  EXPECT_EQ(writeModel(m1), writeModel(m2));
}

TEST(Writer, RejectsNonRepresentableNames) {
  Tables t;
  automata::Automaton a(t.signals, t.props, "m");
  a.addState("weird'name");
  a.markInitial(0);
  Model m;
  m.signals = t.signals;
  m.props = t.props;
  m.automata.emplace("m", a);
  EXPECT_THROW(writeModel(m), std::invalid_argument);
}

TEST(IntegrationScenarioTest, ShuttleFromPattern) {
  Tables t;
  const auto pattern = sh::distanceCoordinationPattern();
  // The legacy component plays the rear role (index 1).
  const auto scenario =
      makeIntegrationScenario(pattern, 1, t.signals, t.props);
  // The context is the front role; the property conjoins the constraint and
  // both role invariants.
  EXPECT_NE(scenario.property.find("rearRole.convoy"), std::string::npos);
  EXPECT_NE(scenario.property.find("AF[1,3]"), std::string::npos);
  EXPECT_NE(scenario.property.find("AF[1,6]"), std::string::npos);

  testing::AutomatonLegacy good(sh::correctRearLegacy(t.signals, t.props));
  synthesis::IntegrationConfig cfg;
  cfg.property = scenario.property;
  const auto ok =
      synthesis::IntegrationVerifier(scenario.context, good, cfg).run();
  EXPECT_EQ(ok.verdict, synthesis::Verdict::ProvenCorrect) << ok.explanation;

  testing::AutomatonLegacy bad(sh::faultyRearLegacy(t.signals, t.props));
  const auto err =
      synthesis::IntegrationVerifier(scenario.context, bad, cfg).run();
  EXPECT_EQ(err.verdict, synthesis::Verdict::RealError) << err.explanation;
}

TEST(IntegrationScenarioTest, Validation) {
  Tables t;
  const auto pattern = sh::distanceCoordinationPattern();
  EXPECT_THROW(makeIntegrationScenario(pattern, 7, t.signals, t.props),
               std::out_of_range);
}

}  // namespace
}  // namespace mui::muml
