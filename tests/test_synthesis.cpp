// End-to-end tests of the iterative behavior-synthesis engine (the paper's
// core contribution): the RailCab scenario verdicts, journal invariants
// (strict learning progress, Thm. 2), partial learning, the key
// verdict-vs-ground-truth agreement property on random closed systems, and
// the multi-legacy extension.

#include <gtest/gtest.h>

#include "automata/compose.hpp"
#include "automata/conformance.hpp"
#include "automata/random.hpp"
#include "ctl/parser.hpp"
#include "helpers.hpp"
#include "muml/shuttle.hpp"
#include "synthesis/initial.hpp"
#include "synthesis/verifier.hpp"
#include "testing/legacy.hpp"
#include "testing/legacy_shuttle.hpp"

namespace mui::synthesis {
namespace {

namespace sh = muml::shuttle;
using test::Tables;

TEST(InitialSynthesis, BuildsTrivialModel) {
  Tables t;
  testing::AutomatonLegacy legacy(sh::correctRearLegacy(t.signals, t.props));
  const auto m = initialModel(legacy, t.signals, t.props);
  EXPECT_EQ(m.base().stateCount(), 1u);
  EXPECT_EQ(m.base().transitionCount(), 0u);
  EXPECT_EQ(m.forbiddenCount(), 0u);
  EXPECT_EQ(m.base().stateName(0), "noConvoy::default");
  EXPECT_TRUE(m.base().isInitial(0));
  EXPECT_TRUE(m.base().inputs() == legacy.inputs());
  EXPECT_TRUE(m.base().outputs() == legacy.outputs());
  // Labeled hierarchically for the pattern constraint.
  EXPECT_TRUE(t.props->lookup("rearRole.noConvoy").has_value());
}

IntegrationConfig shuttleConfig(bool keepTraces = false) {
  IntegrationConfig cfg;
  cfg.property = sh::kPatternConstraint;
  cfg.keepTraces = keepTraces;
  return cfg;
}

TEST(Shuttle, CorrectLegacyProvenCorrect) {
  Tables t;
  const auto front = sh::frontRoleAutomaton(t.signals, t.props);
  testing::AutomatonLegacy legacy(sh::correctRearLegacy(t.signals, t.props));
  IntegrationVerifier verifier(front, legacy, shuttleConfig());
  const auto res = verifier.run();
  EXPECT_EQ(res.verdict, Verdict::ProvenCorrect) << res.explanation;
  ASSERT_FALSE(res.journal.empty());
  EXPECT_TRUE(res.journal.back().checkPassed);

  // The learned model is observation conforming to the hidden behavior
  // (Def. 10) — the invariant behind Thm. 1 at every iteration.
  ASSERT_EQ(res.learnedModels.size(), 1u);
  const auto conf = automata::checkObservationConformance(
      res.learnedModels[0], legacy.hidden());
  EXPECT_TRUE(conf.conforms) << conf.reason;

  // Strict progress (Thm. 2): every non-final iteration learned something.
  for (std::size_t i = 0; i + 1 < res.journal.size(); ++i) {
    EXPECT_GT(res.journal[i].learnedFacts, 0u) << "iteration " << i;
  }
  EXPECT_GT(res.totalTestPeriods, 0u);
}

TEST(Shuttle, FaultyLegacyRealErrorViaFastConflictDetection) {
  Tables t;
  const auto front = sh::frontRoleAutomaton(t.signals, t.props);
  testing::AutomatonLegacy legacy(sh::faultyRearLegacy(t.signals, t.props));
  IntegrationVerifier verifier(front, legacy, shuttleConfig(true));
  const auto res = verifier.run();
  ASSERT_EQ(res.verdict, Verdict::RealError) << res.explanation;
  // Listing 1.4: the conflict is detected within the synthesized behavior.
  EXPECT_NE(res.explanation.find("learned"), std::string::npos);
  // The witness pairs rear convoy mode with front noConvoy mode.
  EXPECT_NE(res.counterexampleText.find("convoy"), std::string::npos);
  EXPECT_NE(res.counterexampleText.find("noConvoy"), std::string::npos);
  // The journal contains rendered counterexamples and monitor logs
  // (Listings 1.1-1.3 artifacts).
  bool sawMonitorText = false;
  for (const auto& rec : res.journal) {
    if (rec.monitorText.find("[CurrentState]") != std::string::npos) {
      sawMonitorText = true;
    }
  }
  EXPECT_TRUE(sawMonitorText);
}

TEST(Shuttle, FirmwareLegacyBehavesLikeReference) {
  // The hand-written firmware drives to the same verdicts as the reference
  // automata (correct -> proven, faulty -> real error).
  Tables t;
  const auto front = sh::frontRoleAutomaton(t.signals, t.props);
  testing::FirmwareShuttleLegacy good(t.signals, false);
  EXPECT_EQ(IntegrationVerifier(front, good, shuttleConfig()).run().verdict,
            Verdict::ProvenCorrect);
  testing::FirmwareShuttleLegacy bad(t.signals, true);
  EXPECT_EQ(IntegrationVerifier(front, bad, shuttleConfig()).run().verdict,
            Verdict::RealError);
}

TEST(Shuttle, IterationLimitVerdict) {
  Tables t;
  const auto front = sh::frontRoleAutomaton(t.signals, t.props);
  testing::AutomatonLegacy legacy(sh::correctRearLegacy(t.signals, t.props));
  auto cfg = shuttleConfig();
  cfg.maxIterations = 1;
  const auto res = IntegrationVerifier(front, legacy, cfg).run();
  EXPECT_EQ(res.verdict, Verdict::IterationLimit);
}

TEST(Shuttle, UnsupportedPropertyShape) {
  Tables t;
  const auto front = sh::frontRoleAutomaton(t.signals, t.props);
  testing::AutomatonLegacy legacy(sh::correctRearLegacy(t.signals, t.props));
  IntegrationConfig cfg;
  cfg.property = "EF ghost_state";  // fails; EF has no exact witness
  const auto res = IntegrationVerifier(front, legacy, cfg).run();
  EXPECT_EQ(res.verdict, Verdict::Unsupported);
}

// ---- Verdict agreement with ground truth on random closed systems ----------

struct AgreementCase {
  std::uint64_t seed;
  std::uint64_t contextKeepPct;  // how much of the legacy the context uses
  bool injectProperty;
};

class VerdictAgreement : public ::testing::TestWithParam<AgreementCase> {};

TEST_P(VerdictAgreement, MatchesDirectModelChecking) {
  const auto param = GetParam();
  Tables t;
  automata::RandomSpec spec;
  spec.states = 6;
  spec.inputs = 2;
  spec.outputs = 2;
  spec.densityPct = 40;
  spec.seed = param.seed;
  spec.name = "lg";
  const automata::Automaton hidden =
      automata::randomAutomaton(spec, t.signals, t.props);

  // Context: the I/O-mirrored twin of a random sub-behavior — it exercises
  // only part of the component, like a real integration context.
  const automata::Automaton context = automata::mirrored(
      automata::subAutomaton(hidden, param.contextKeepPct, param.seed + 5,
                             "lg_sub"),
      "ctx");

  IntegrationConfig cfg;
  if (param.injectProperty) {
    // Forbid the component's last state (reachable or not, per seed).
    cfg.property =
        "AG !lg.lg_q" + std::to_string(spec.states - 1);
  }

  // Ground truth: model check the context against the *hidden* automaton.
  const auto truth = ctl::verify(
      automata::compose(context, hidden).automaton,
      cfg.property.empty() ? nullptr : ctl::parseFormula(cfg.property), {});

  testing::AutomatonLegacy legacy(hidden);
  const auto res = IntegrationVerifier(context, legacy, cfg).run();
  ASSERT_TRUE(res.verdict == Verdict::ProvenCorrect ||
              res.verdict == Verdict::RealError)
      << res.explanation;
  EXPECT_EQ(res.verdict == Verdict::ProvenCorrect, truth.holds)
      << "seed " << param.seed << ": " << res.explanation;

  // Soundness invariant (Thm. 1): whatever was learned conforms.
  EXPECT_TRUE(automata::checkObservationConformance(res.learnedModels[0],
                                                    hidden)
                  .conforms);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VerdictAgreement,
    ::testing::Values(
        AgreementCase{1, 70, false}, AgreementCase{2, 70, false},
        AgreementCase{3, 40, false}, AgreementCase{4, 40, false},
        AgreementCase{5, 100, false}, AgreementCase{6, 100, true},
        AgreementCase{7, 70, true}, AgreementCase{8, 40, true},
        AgreementCase{9, 55, true}, AgreementCase{10, 85, false},
        AgreementCase{11, 85, true}, AgreementCase{12, 25, false}));

TEST(PartialLearning, RestrictedContextLearnsLessThanTheWholeComponent) {
  // The paper's headline benefit: with a restrictive context, the verdict
  // arrives after learning only part of the component.
  Tables t;
  automata::RandomSpec spec;
  spec.states = 12;
  spec.inputs = 2;
  spec.outputs = 2;
  spec.densityPct = 35;
  spec.seed = 31;
  spec.name = "lg";
  const automata::Automaton hidden =
      automata::randomAutomaton(spec, t.signals, t.props);
  const automata::Automaton context = automata::mirrored(
      automata::subAutomaton(hidden, 15, 99, "lg_sub"), "ctx");
  testing::AutomatonLegacy legacy(hidden);
  const auto res = IntegrationVerifier(context, legacy, {}).run();
  ASSERT_TRUE(res.verdict == Verdict::ProvenCorrect ||
              res.verdict == Verdict::RealError);
  const auto& learned = res.learnedModels[0].base();
  EXPECT_LT(learned.transitionCount(), hidden.transitionCount());
}

// ---- Multi-legacy extension (paper Sec. 7) ---------------------------------

TEST(MultiLegacy, TwoComponentsAgainstAJointContext) {
  Tables t;
  automata::RandomSpec specA;
  specA.states = 4;
  specA.inputs = 1;
  specA.outputs = 1;
  specA.seed = 3;
  specA.name = "la";
  automata::RandomSpec specB = specA;
  specB.seed = 4;
  specB.name = "lb";
  const auto hiddenA = automata::randomAutomaton(specA, t.signals, t.props);
  const auto hiddenB = automata::randomAutomaton(specB, t.signals, t.props);

  // Joint context: the composition of both mirrors.
  const auto mirrorA = automata::mirrored(hiddenA, "ca");
  const auto mirrorB = automata::mirrored(hiddenB, "cb");
  const auto context =
      automata::composeAll({&mirrorA, &mirrorB}).automaton;

  // Ground truth with both hidden components.
  const auto truth = ctl::verify(
      automata::composeAll({&context, &hiddenA, &hiddenB}).automaton, nullptr,
      {});

  testing::AutomatonLegacy legacyA(hiddenA);
  testing::AutomatonLegacy legacyB(hiddenB);
  IntegrationVerifier verifier(context, {&legacyA, &legacyB}, {});
  const auto res = verifier.run();
  ASSERT_TRUE(res.verdict == Verdict::ProvenCorrect ||
              res.verdict == Verdict::RealError)
      << res.explanation;
  EXPECT_EQ(res.verdict == Verdict::ProvenCorrect, truth.holds)
      << res.explanation;
  EXPECT_EQ(res.learnedModels.size(), 2u);
  EXPECT_TRUE(automata::checkObservationConformance(res.learnedModels[0],
                                                    hiddenA)
                  .conforms);
  EXPECT_TRUE(automata::checkObservationConformance(res.learnedModels[1],
                                                    hiddenB)
                  .conforms);
}

TEST(Strategies, SearchAndBatchVariantsAgreeOnTheVerdict) {
  // E7: depth-first search and multiple counterexamples per check are
  // performance knobs, not semantics — verdicts must not change.
  Tables t;
  const auto front = sh::frontRoleAutomaton(t.signals, t.props);
  for (const bool faulty : {false, true}) {
    const auto hidden = faulty ? sh::faultyRearLegacy(t.signals, t.props)
                               : sh::correctRearLegacy(t.signals, t.props);
    const Verdict expected =
        faulty ? Verdict::RealError : Verdict::ProvenCorrect;

    auto dfs = shuttleConfig();
    dfs.search = ctl::CexSearch::DepthFirst;
    testing::AutomatonLegacy l1(hidden);
    EXPECT_EQ(IntegrationVerifier(front, l1, dfs).run().verdict, expected);

    auto batch = shuttleConfig();
    batch.counterexamplesPerCheck = 4;
    testing::AutomatonLegacy l2(hidden);
    EXPECT_EQ(IntegrationVerifier(front, l2, batch).run().verdict, expected);

    auto exact = shuttleConfig();
    exact.closureStyle = automata::ClosureStyle::PaperExact;
    testing::AutomatonLegacy l3(hidden);
    const auto res = IntegrationVerifier(front, l3, exact).run();
    // PaperExact may stall without progress (see DESIGN.md §6), but must
    // never produce a *wrong* verdict.
    if (res.verdict == Verdict::ProvenCorrect ||
        res.verdict == Verdict::RealError) {
      EXPECT_EQ(res.verdict, expected);
    }
  }
}

}  // namespace
}  // namespace mui::synthesis
