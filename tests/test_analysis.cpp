// Tests for the model lint subsystem (mui::analysis): one triggering and
// one clean model per rule, the `allow` suppression and RuleSet plumbing,
// golden strings for the text renderer, a well-formedness check for the
// SARIF output, and the batch engine's lint pre-flight short-circuit.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/analyze.hpp"
#include "analysis/render.hpp"
#include "analysis/rules.hpp"
#include "engine/engine.hpp"
#include "muml/loader.hpp"

namespace mui::analysis {
namespace {

Report lint(std::string_view text, const RuleSet& rules = RuleSet::all()) {
  const muml::Model m = muml::loadModel(text, "test.muml");
  return run(m, rules);
}

std::vector<std::string> ruleIds(const Report& r) {
  std::vector<std::string> out;
  for (const auto& d : r.diagnostics) out.push_back(d.ruleId);
  return out;
}

bool fires(const Report& r, const char* rule) {
  const auto ids = ruleIds(r);
  return std::find(ids.begin(), ids.end(), rule) != ids.end();
}

// A pattern whose two roles exchange x/y symmetrically — clean except for
// what a test splices in.
constexpr const char* kCleanPattern = R"mm(
  rtsc A { input x; output y; location l0; initial l0;
           l0 -> l0 : trigger x emit y; }
  rtsc B { input y; output x; location m0; initial m0;
           m0 -> m0 : trigger y emit x; }
  pattern P {
    role a uses A;
    role b uses B;
    connector direct;
    constraint "AG a.l0";
  }
)mm";

TEST(Registry, TenRulesWithStableIdsAndLookup) {
  const auto& rules = allRules();
  ASSERT_EQ(rules.size(), 15u);
  EXPECT_STREQ(rules.front().id, "MUI001");
  EXPECT_STREQ(rules.back().id, "MUI105");
  for (const auto& r : rules) {
    const RuleInfo* found = findRule(r.id);
    ASSERT_NE(found, nullptr);
    EXPECT_STREQ(found->name, r.name);
  }
  EXPECT_EQ(findRule("MUI999"), nullptr);
}

// ---- MUI001 unreachable-state ----------------------------------------------

TEST(Mui001, FiresOnUnreachableState) {
  const auto r = lint(R"mm(
    automaton a { initial s0; state orphan; s0 -> s0 : ; }
  )mm");
  EXPECT_TRUE(fires(r, kUnreachableState));
  EXPECT_FALSE(r.clean());
}

TEST(Mui001, CleanWhenAllStatesReachable) {
  const auto r = lint(R"mm(
    automaton a { initial s0; s0 -> s1 : ; s1 -> s0 : ; }
  )mm");
  EXPECT_FALSE(fires(r, kUnreachableState));
  EXPECT_TRUE(r.clean());
}

// ---- MUI002 sink-state -----------------------------------------------------

TEST(Mui002, FiresOnReachableSinkState) {
  const auto r = lint(R"mm(
    automaton a { initial s0; s0 -> stuck : ; }
  )mm");
  EXPECT_TRUE(fires(r, kSinkState));
}

TEST(Mui002, ChaoticSinkIsExempt) {
  // A sink labeled with the chaotic-closure proposition is the closure's
  // s_delta by construction — not a modeling error.
  const auto r = lint(R"mm(
    automaton a { state s_delta labels p_chaos; initial s0; s0 -> s_delta : ; }
  )mm");
  EXPECT_FALSE(fires(r, kSinkState));
}

// ---- MUI003 unused-signal --------------------------------------------------

TEST(Mui003, FiresOnDeclaredButUnusedAutomatonSignals) {
  const auto r = lint(R"mm(
    automaton a { input used ghost; output alsoGhost;
                  initial s0; s0 -> s0 : used / ; }
  )mm");
  const auto ids = ruleIds(r);
  EXPECT_EQ(std::count(ids.begin(), ids.end(), std::string(kUnusedSignal)), 2);
}

TEST(Mui003, FiresOnUnusedRtscSignalsAndCleanOtherwise) {
  const auto positive = lint(R"mm(
    rtsc R { input req ghost; output ack; location l; initial l;
             l -> l : trigger req emit ack; }
  )mm");
  EXPECT_TRUE(fires(positive, kUnusedSignal));

  const auto negative = lint(R"mm(
    rtsc R { input req; output ack; location l; initial l;
             l -> l : trigger req emit ack; }
  )mm");
  EXPECT_TRUE(negative.clean());
  EXPECT_TRUE(negative.diagnostics.empty());
}

// ---- MUI004 alphabet-mismatch ----------------------------------------------

TEST(Mui004, ClashingInputClaimsWarn) {
  const auto r = lint(R"mm(
    rtsc A { input x; location l; initial l; l -> l : trigger x; }
    rtsc B { input x; location m; initial m; m -> m : trigger x; }
    pattern P { role a uses A; role b uses B; connector direct; }
  )mm");
  ASSERT_TRUE(fires(r, kAlphabetMismatch));
  EXPECT_FALSE(r.clean());
  EXPECT_FALSE(r.hasErrors());
}

TEST(Mui004, UnconsumedOutputWarnsAndUnfedInputIsANote) {
  const auto r = lint(R"mm(
    rtsc A { output lost; location l; initial l; l -> l : emit lost; }
    rtsc B { input wanted; location m; initial m; m -> m : trigger wanted; }
    pattern P { role a uses A; role b uses B; connector direct; }
  )mm");
  bool sawWarning = false, sawNote = false;
  for (const auto& d : r.diagnostics) {
    if (d.ruleId != kAlphabetMismatch) continue;
    sawWarning |= d.severity == Severity::Warning;
    sawNote |= d.severity == Severity::Note;
  }
  EXPECT_TRUE(sawWarning);
  EXPECT_TRUE(sawNote);
  EXPECT_FALSE(r.hasErrors());
}

TEST(Mui004, ChannelRoutesSatisfyTheMatching) {
  // a emits 'snd'; the channel routes snd->rcv; b consumes 'rcv'.
  const auto r = lint(R"mm(
    rtsc A { output snd; location l; initial l; l -> l : emit snd; }
    rtsc B { input rcv; location m; initial m; m -> m : trigger rcv; }
    pattern P { role a uses A; role b uses B;
                connector channel delay 1 capacity 1 routes snd->rcv; }
  )mm");
  for (const auto& d : r.diagnostics) {
    EXPECT_NE(d.severity, Severity::Warning) << d.toString();
    EXPECT_NE(d.severity, Severity::Error) << d.toString();
  }
}

// ---- MUI005 nondeterministic-stub ------------------------------------------

TEST(Mui005, FiresOnNondeterministicAutomaton) {
  const auto r = lint(R"mm(
    automaton a { input go; initial s0;
                  s0 -> s1 : go / ; s0 -> s2 : go / ;
                  s1 -> s1 : ; s2 -> s2 : ; }
  )mm");
  EXPECT_TRUE(fires(r, kNondeterministicStub));
}

TEST(Mui005, DeterministicStubIsClean) {
  const auto r = lint(R"mm(
    automaton a { input go; initial s0;
                  s0 -> s1 : go / ; s0 -> s0 : ; s1 -> s1 : ; }
  )mm");
  EXPECT_FALSE(fires(r, kNondeterministicStub));
}

// ---- MUI006 duplicate-transition -------------------------------------------

TEST(Mui006, FiresOnTextuallyRepeatedTransition) {
  const auto r = lint(R"mm(
    automaton a { input go; initial s0;
                  s0 -> s0 : go / ;
                  s0 -> s0 : go / ; }
  )mm");
  ASSERT_TRUE(fires(r, kDuplicateTransition));
  // The diagnostic points at the duplicate occurrence, not the automaton.
  for (const auto& d : r.diagnostics) {
    if (d.ruleId == kDuplicateTransition) {
      EXPECT_EQ(d.loc.line, 4u);
    }
  }
}

TEST(Mui006, DistinctTransitionsDoNotFire) {
  const auto r = lint(R"mm(
    automaton a { input go; initial s0; s0 -> s0 : go / ; s0 -> s0 : ; }
  )mm");
  EXPECT_FALSE(fires(r, kDuplicateTransition));
}

// ---- MUI007 bad-formula-atom -----------------------------------------------

TEST(Mui007, UnknownAtomIsAnError) {
  const auto r = lint(R"mm(
    rtsc A { input x; output y; location l0; initial l0;
             l0 -> l0 : trigger x emit y; }
    rtsc B { input y; output x; location m0; initial m0;
             m0 -> m0 : trigger y emit x; }
    pattern P { role a uses A; role b uses B; connector direct;
                constraint "AG !a.misTyped"; }
  )mm");
  EXPECT_TRUE(fires(r, kBadFormulaAtom));
  EXPECT_TRUE(r.hasErrors());
}

TEST(Mui007, UnparseableInvariantIsAnError) {
  const auto r = lint(R"mm(
    rtsc A { input x; output y; location l0; initial l0;
             l0 -> l0 : trigger x emit y; }
    rtsc B { input y; output x; location m0; initial m0;
             m0 -> m0 : trigger y emit x; }
    pattern P { role a uses A invariant "AG (("; role b uses B;
                connector direct; }
  )mm");
  EXPECT_TRUE(fires(r, kBadFormulaAtom));
}

TEST(Mui007, RolePropsAndChaosPropAreKnown) {
  const auto r = lint(R"mm(
    rtsc A { input x; output y; location l0; initial l0;
             l0 -> l0 : trigger x emit y; }
    rtsc B { input y; output x; location m0; initial m0;
             m0 -> m0 : trigger y emit x; }
    pattern P { role a uses A invariant "AG (a.l0 || p_chaos)";
                role b uses B; connector direct;
                constraint "AG !(a.l0 && !b.m0)"; }
  )mm");
  EXPECT_FALSE(fires(r, kBadFormulaAtom));
}

// ---- MUI008 degenerate-bound -----------------------------------------------

TEST(Mui008, PointWindowFiresAndProperWindowDoesNot) {
  // An empty window like [3,1] never reaches the analyzer — the formula
  // parser rejects it (covered below as MUI007). The degenerate bound that
  // does parse is the point window [0,0].
  const auto degenerate = lint(R"mm(
    rtsc A { input x; output y; location l0; initial l0;
             l0 -> l0 : trigger x emit y; }
    rtsc B { input y; output x; location m0; initial m0;
             m0 -> m0 : trigger y emit x; }
    pattern P { role a uses A; role b uses B; connector direct;
                constraint "AG (AF[0,0] a.l0)"; }
  )mm");
  EXPECT_TRUE(fires(degenerate, kDegenerateBound));

  const auto proper = lint(R"mm(
    rtsc A { input x; output y; location l0; initial l0;
             l0 -> l0 : trigger x emit y; }
    rtsc B { input y; output x; location m0; initial m0;
             m0 -> m0 : trigger y emit x; }
    pattern P { role a uses A; role b uses B; connector direct;
                constraint "AG (AF[1,3] a.l0)"; }
  )mm");
  EXPECT_FALSE(fires(proper, kDegenerateBound));
}

TEST(Mui008, EmptyWindowIsAParseErrorSurfacedAsMui007) {
  const auto r = lint(R"mm(
    rtsc A { input x; output y; location l0; initial l0;
             l0 -> l0 : trigger x emit y; }
    rtsc B { input y; output x; location m0; initial m0;
             m0 -> m0 : trigger y emit x; }
    pattern P { role a uses A; role b uses B; connector direct;
                constraint "AG (AF[3,1] a.l0)"; }
  )mm");
  EXPECT_TRUE(fires(r, kBadFormulaAtom));
  EXPECT_FALSE(fires(r, kDegenerateBound));
}

// ---- MUI009 no-initial-state -----------------------------------------------

TEST(Mui009, MissingInitialStateIsAnErrorAndMasksDerivedRules) {
  const auto r = lint(R"mm(
    automaton a { state s0; s0 -> s0 : ; }
  )mm");
  EXPECT_TRUE(fires(r, kNoInitialState));
  EXPECT_TRUE(r.hasErrors());
  // No MUI001 avalanche for the same root cause.
  EXPECT_FALSE(fires(r, kUnreachableState));
}

TEST(Mui009, InitialStatePresentIsClean) {
  const auto r = lint("automaton a { initial s0; s0 -> s0 : ; }");
  EXPECT_FALSE(fires(r, kNoInitialState));
}

// ---- MUI010 non-actl-formula -----------------------------------------------

TEST(Mui010, ExistentialConstraintWarnsAndActlDoesNot) {
  const auto existential = lint(R"mm(
    rtsc A { input x; output y; location l0; initial l0;
             l0 -> l0 : trigger x emit y; }
    rtsc B { input y; output x; location m0; initial m0;
             m0 -> m0 : trigger y emit x; }
    pattern P { role a uses A; role b uses B; connector direct;
                constraint "AG EF a.l0"; }
  )mm");
  EXPECT_TRUE(fires(existential, kNonActlFormula));

  const auto actl = lint(kCleanPattern);
  EXPECT_FALSE(fires(actl, kNonActlFormula));
}

// ---- suppression and rule selection ----------------------------------------

TEST(Suppression, AllowClauseSuppressesAndCounts) {
  const auto r = lint(R"mm(
    automaton a { input ghost; allow MUI003; initial s0; s0 -> s0 : ; }
  )mm");
  EXPECT_FALSE(fires(r, kUnusedSignal));
  EXPECT_EQ(r.suppressed, 1u);
  EXPECT_TRUE(r.clean());
}

TEST(Suppression, AllowIsScopedToItsEntity) {
  const auto r = lint(R"mm(
    automaton a { input ghost; allow MUI003; initial s0; s0 -> s0 : ; }
    automaton b { input ghost2; initial s0; s0 -> s0 : ; }
  )mm");
  EXPECT_TRUE(fires(r, kUnusedSignal));  // only b's finding survives
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(RuleSet, DisableSkipsTheRule) {
  const auto r = lint("automaton a { input ghost; initial s0; s0 -> s0 : ; }",
                      RuleSet::all().disable(kUnusedSignal));
  EXPECT_TRUE(r.diagnostics.empty());
}

TEST(RuleSet, ErrorsOnlyKeepsErrorRules) {
  // Unused signal (warning) + missing initial (error) in one model.
  const auto r = lint("automaton a { input ghost; state s0; s0 -> s0 : ; }",
                      RuleSet::errorsOnly());
  EXPECT_TRUE(fires(r, kNoInitialState));
  EXPECT_FALSE(fires(r, kUnusedSignal));
}

// ---- renderers -------------------------------------------------------------

TEST(RenderText, GoldenListingAndSummary) {
  const auto r = lint(R"mm(automaton a { input ghost; initial s0; s0 -> s0 : ; }
)mm");
  EXPECT_EQ(renderText(r),
            "test.muml:1:11: warning: automaton 'a': input 'ghost' is "
            "declared but never consumed [MUI003]\n"
            "0 error(s), 1 warning(s), 0 note(s)\n");
}

TEST(RenderText, CleanSummary) {
  const auto r = lint("automaton a { initial s0; s0 -> s0 : ; }");
  EXPECT_EQ(renderText(r), "clean\n");
}

TEST(RenderText, SuppressedCountIsShown) {
  const auto r = lint(
      "automaton a { input ghost; allow MUI003; initial s0; s0 -> s0 : ; }");
  EXPECT_EQ(renderText(r), "clean (1 suppressed)\n");
}

/// Minimal JSON well-formedness scan: strings (with escapes) are skipped,
/// structural brackets must nest and match. Catches unescaped quotes,
/// truncation, and bracket mismatches without a JSON library.
void expectWellFormedJson(const std::string& text) {
  std::vector<char> stack;
  bool inString = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (inString) {
      if (c == '\\') {
        ++i;  // skip the escaped character
      } else if (c == '"') {
        inString = false;
      } else {
        ASSERT_NE(c, '\n') << "raw newline inside a JSON string at " << i;
      }
      continue;
    }
    switch (c) {
      case '"':
        inString = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        break;
      case '}':
        ASSERT_FALSE(stack.empty());
        ASSERT_EQ(stack.back(), '{') << "mismatched '}' at offset " << i;
        stack.pop_back();
        break;
      case ']':
        ASSERT_FALSE(stack.empty());
        ASSERT_EQ(stack.back(), '[') << "mismatched ']' at offset " << i;
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  EXPECT_FALSE(inString) << "unterminated string";
  EXPECT_TRUE(stack.empty()) << "unclosed brackets";
}

TEST(Sarif, DocumentShapeAndEscaping) {
  const auto r = lint(
      "automaton a { input ghost; state orphan; initial s0; s0 -> s0 : ; }");
  const std::string sarif = writeSarif(r);
  expectWellFormedJson(sarif);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"mui-lint\""), std::string::npos);
  EXPECT_NE(sarif.find("\"results\""), std::string::npos);
  // Every registered rule is described, every finding becomes a result.
  for (const auto& rule : allRules()) {
    EXPECT_NE(sarif.find("\"id\": \"" + std::string(rule.id) + "\""),
              std::string::npos);
  }
  for (const auto& d : r.diagnostics) {
    EXPECT_NE(sarif.find("\"ruleId\": \"" + d.ruleId + "\""),
              std::string::npos);
  }
  EXPECT_NE(sarif.find("\"startLine\": 1"), std::string::npos);
}

TEST(Sarif, EmptyReportIsStillWellFormed) {
  const auto r = lint("automaton a { initial s0; s0 -> s0 : ; }");
  ASSERT_TRUE(r.diagnostics.empty());
  expectWellFormedJson(writeSarif(r));
}

// ---- batch engine pre-flight -----------------------------------------------

constexpr const char* kBadBatchModel = R"mm(
  rtsc A { input x; output y; location l0; initial l0;
           l0 -> l0 : trigger x emit y; }
  rtsc B { input y; output x; location m0; initial m0;
           m0 -> m0 : trigger y emit x; }
  pattern P { role a uses A; role b uses B; connector direct;
              constraint "AG !a.misTyped"; }
  automaton stub { input x; output y; initial s0; s0 -> s0 : x / y;
                   s0 -> s0 : ; }
)mm";

TEST(Preflight, ErrorFindingsShortCircuitTheJob) {
  engine::TextCache texts;
  texts.prime("mem:bad", kBadBatchModel);
  engine::Job job;
  job.name = "bad";
  job.modelPath = "mem:bad";
  job.pattern = "P";
  job.legacyRole = "a";
  job.hidden = "stub";

  const auto report = engine::runBatch({job}, {}, texts);
  ASSERT_EQ(report.results.size(), 1u);
  const auto& res = report.results.front();
  EXPECT_EQ(res.status, engine::JobStatus::EngineError);
  EXPECT_EQ(res.iterations, 0u);
  EXPECT_EQ(res.explanation.rfind("lint: ", 0), 0u) << res.explanation;
  EXPECT_NE(res.explanation.find("MUI007"), std::string::npos)
      << res.explanation;
}

TEST(Preflight, NoLintOptionSkipsTheGate) {
  engine::TextCache texts;
  texts.prime("mem:bad", kBadBatchModel);
  engine::Job job;
  job.name = "bad";
  job.modelPath = "mem:bad";
  job.pattern = "P";
  job.legacyRole = "a";
  job.hidden = "stub";

  engine::BatchOptions options;
  options.lintPreflight = false;
  const auto report = engine::runBatch({job}, options, texts);
  ASSERT_EQ(report.results.size(), 1u);
  // Whatever the loop decides, it is not a lint verdict.
  EXPECT_EQ(report.results.front().explanation.rfind("lint: ", 0),
            std::string::npos);
}

TEST(Preflight, CleanModelStillRuns) {
  engine::TextCache texts;
  texts.prime("mem:good", R"mm(
    rtsc A { input x; output y; location l0; initial l0;
             l0 -> l0 : trigger x emit y; }
    rtsc B { input y; output x; location m0; initial m0;
             m0 -> m0 : trigger y emit x; }
    pattern P { role a uses A; role b uses B; connector direct;
                constraint "AG a.l0"; }
    automaton stub { input x; output y; initial s0; s0 -> s0 : x / y;
                     s0 -> s0 : ; }
  )mm");
  engine::Job job;
  job.name = "good";
  job.modelPath = "mem:good";
  job.pattern = "P";
  job.legacyRole = "a";
  job.hidden = "stub";

  const auto report = engine::runBatch({job}, {}, texts);
  ASSERT_EQ(report.results.size(), 1u);
  EXPECT_NE(report.results.front().status, engine::JobStatus::EngineError)
      << report.results.front().explanation;
}

}  // namespace
}  // namespace mui::analysis
