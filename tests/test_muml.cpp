// Tests for the MECHATRONIC UML layer: channel connectors (QoS), the .muml
// loader, pattern verification, port-role refinement, and — crucially — the
// ground truth of the RailCab scenario that the integration loop must
// reproduce: the correct legacy integrates cleanly, the faulty one violates
// the pattern constraint.

#include <gtest/gtest.h>

#include "automata/compose.hpp"
#include "ctl/checker.hpp"
#include "ctl/parser.hpp"
#include "helpers.hpp"
#include "muml/channel.hpp"
#include "muml/loader.hpp"
#include "muml/shuttle.hpp"
#include "muml/verify.hpp"
#include "util/parse.hpp"

namespace mui::muml {
namespace {

using test::Tables;

TEST(Channel, DelayOneCapacityOneShape) {
  Tables t;
  const ChannelSpec spec{"ch", {{"m_src", "m_dst"}}, 1, 1, false};
  const auto ch = makeChannel(t.signals, t.props, spec);
  // States: empty and m@1.
  EXPECT_EQ(ch.stateCount(), 2u);
  const auto empty = *ch.stateByName("empty");
  const auto full = *ch.stateByName("m_src@1");
  EXPECT_TRUE(ch.isInitial(empty));
  EXPECT_TRUE(ch.hasTransitionTo(empty, test::ia(*t.signals, {"m_src"}, {}),
                                 full));
  // Due message: may be held or delivered (possibly accepting a new one).
  EXPECT_TRUE(ch.hasTransitionTo(full, {}, full));
  EXPECT_TRUE(ch.hasTransitionTo(full, test::ia(*t.signals, {}, {"m_dst"}),
                                 empty));
  EXPECT_TRUE(ch.hasTransitionTo(
      full, test::ia(*t.signals, {"m_src"}, {"m_dst"}), full));
  // Capacity 1: a full channel refuses a second send without delivery.
  EXPECT_FALSE(ch.hasTransitionTo(full, test::ia(*t.signals, {"m_src"}, {}),
                                  full));
}

TEST(Channel, DelayDefersDelivery) {
  Tables t;
  const ChannelSpec spec{"ch", {{"a_src", "a_dst"}}, 3, 1, false};
  const auto ch = makeChannel(t.signals, t.props, spec);
  ctl::Checker checker(ch);
  // After a send, delivery becomes possible exactly after `delay` ticks —
  // never earlier (lower-bound QoS).
  EXPECT_TRUE(checker.holds(ctl::parseFormula(
      "AG (ch.a_src@1 -> !EF[0,1] ch.empty)")));
  EXPECT_TRUE(checker.holds(ctl::parseFormula(
      "AG (ch.a_src@1 -> EF[2,2] ch.empty)")));
}

TEST(Channel, LossyChannelsCanDropInFlight) {
  Tables t;
  const ChannelSpec lossless{"ch", {{"x_src", "x_dst"}}, 2, 1, false};
  const auto a = makeChannel(t.signals, t.props, lossless);
  Tables t2;
  const ChannelSpec lossy{"ch", {{"x_src", "x_dst"}}, 2, 1, true};
  const auto b = makeChannel(t2.signals, t2.props, lossy);
  // The lossy channel has extra silent transitions back to empty.
  EXPECT_GT(b.transitionCount(), a.transitionCount());
  const auto full = *b.stateByName("x_src@1");
  EXPECT_TRUE(b.hasTransitionTo(full, {}, *b.stateByName("empty")));
}

TEST(Channel, EndToEndThroughComposition) {
  // sender -> channel -> receiver: the message arrives after the delay.
  Tables t;
  automata::Automaton snd(t.signals, t.props, "snd");
  snd.addOutput("m_src");
  snd.addState("s0");
  snd.addState("s1");
  snd.markInitial(0);
  snd.addTransition(0, test::ia(*t.signals, {}, {"m_src"}), 1);
  snd.addTransition(1, {}, 1);

  automata::Automaton rcv(t.signals, t.props, "rcv");
  rcv.addInput("m_dst");
  rcv.addState("r0");
  rcv.addState("r1");
  rcv.markInitial(0);
  rcv.labelWithStateName(1);
  rcv.addTransition(0, {}, 0);
  rcv.addTransition(0, test::ia(*t.signals, {"m_dst"}, {}), 1);
  rcv.addTransition(1, {}, 1);

  const auto ch =
      makeChannel(t.signals, t.props, {"ch", {{"m_src", "m_dst"}}, 2, 1, false});
  const auto prod = automata::composeAll({&snd, &ch, &rcv});
  ctl::Checker checker(prod.automaton);
  // Transit spans `delay` ticks including the send tick: the send fires at
  // tick 1 (message age 1), and delivery is possible once the age reaches
  // the delay — here at tick 2, never earlier.
  EXPECT_TRUE(checker.holds(ctl::parseFormula("EF rcv.r1")));
  EXPECT_FALSE(checker.holds(ctl::parseFormula("EF[0,1] rcv.r1")));
  EXPECT_TRUE(checker.holds(ctl::parseFormula("EF[2,2] rcv.r1")));
}

TEST(Loader, ParsesAutomatonRtscAndPattern) {
  const Model m = loadModel(R"mm(
    # a tiny ping automaton
    automaton ping {
      input ack; output req;
      initial idle;
      idle -> waiting : / req;
      waiting -> idle : ack / ;
      waiting -> waiting : ;
    }

    rtsc Responder {
      input req; output ack;
      clock c;
      location idle;
      location busy invariant c <= 2;
      initial idle;
      idle -> busy : trigger req reset c;
      busy -> idle : emit ack guard c >= 1;
    }

    rtsc Caller {
      input ack; output req;
      location quiet;
      initial quiet;
      quiet -> quiet : emit req;
      quiet -> quiet : trigger ack;
    }

    pattern PingPong {
      role caller uses Caller;
      role responder uses Responder invariant "AG (Responder.busy -> AF[1,3] Responder.idle)";
      connector direct;
      constraint "AG !deadlock";
    }
  )mm");
  ASSERT_EQ(m.automata.size(), 1u);
  ASSERT_EQ(m.statecharts.size(), 2u);
  ASSERT_EQ(m.patterns.size(), 1u);
  const auto& ping = m.automata.at("ping");
  EXPECT_EQ(ping.stateCount(), 2u);
  EXPECT_EQ(ping.transitionCount(), 3u);
  EXPECT_TRUE(ping.isInitial(*ping.stateByName("idle")));
  const auto& responder = m.statecharts.at("Responder");
  EXPECT_EQ(responder.locationCount(), 2u);
  EXPECT_EQ(responder.clockCount(), 1u);
  EXPECT_EQ(m.patterns.at("PingPong").roles.size(), 2u);
}

TEST(Loader, Errors) {
  EXPECT_THROW(loadModel("automaton a { initial s; } automaton a {}"),
               std::invalid_argument);
  EXPECT_THROW(loadModel("rtsc R { idle -> idle : ; }"),
               std::invalid_argument);  // unknown location
  EXPECT_THROW(loadModel("pattern P { role r uses Nope; }"),
               std::invalid_argument);
  EXPECT_THROW(loadModel("blargh x {}"), util::ParseError);
  EXPECT_THROW(loadModel("rtsc R { location l; initial l; l -> l : guard c <= 1; }"),
               std::invalid_argument);  // unknown clock
}

TEST(Loader, ErrorsCarrySourceFileAndLine) {
  // Semantic errors (duplicate names, unknown references) point at the
  // offending line of the named source.
  try {
    loadModel("automaton a { initial s; }\nautomaton a { initial s; }\n",
              "dup.muml");
    FAIL() << "expected SemanticError";
  } catch (const util::SemanticError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("dup.muml:2:"), std::string::npos) << msg;
    EXPECT_NE(msg.find("duplicate automaton 'a'"), std::string::npos) << msg;
  }
  // Syntax errors carry the same source:line:col prefix.
  try {
    loadModel("blargh x {}", "bad.muml");
    FAIL() << "expected ParseError";
  } catch (const util::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("bad.muml:1:1:"), std::string::npos)
        << e.what();
  }
  // Without a source name the legacy "(line L, col C)" suffix remains.
  try {
    loadModel("blargh x {}");
    FAIL() << "expected ParseError";
  } catch (const util::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("(line 1, col 1)"), std::string::npos)
        << e.what();
  }
}

TEST(Loader, LoadModelFileReportsMissingPath) {
  try {
    loadModelFile("/no/such/model.muml");
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("/no/such/model.muml"),
              std::string::npos)
        << e.what();
  }
}

TEST(Loader, ChannelConnectorAttributes) {
  const Model m = loadModel(R"mm(
    rtsc A { output m_src; location l; initial l; l -> l : emit m_src; }
    rtsc B { input m_dst; location l; initial l; l -> l : trigger m_dst; }
    pattern P {
      role a uses A;
      role b uses B;
      connector channel delay 2 capacity 1 lossy routes m_src->m_dst;
      constraint "AG true";
    }
  )mm");
  const auto& c = m.patterns.at("P").connector;
  EXPECT_EQ(c.kind, ConnectorSpec::Kind::Channel);
  EXPECT_EQ(c.channel.delay, 2u);
  EXPECT_TRUE(c.channel.lossy);
  ASSERT_EQ(c.channel.routes.size(), 1u);
  EXPECT_EQ(c.channel.routes[0].source, "m_src");
  EXPECT_EQ(c.channel.routes[0].destination, "m_dst");
}

TEST(Loader, DuplicateTransitionsAreDedupedAndRecorded) {
  const Model m = loadModel(
      "automaton a { input go; initial s0;\n"
      "  s0 -> s0 : go / ;\n"
      "  s0 -> s0 : go / ;\n"
      "}\n",
      "dup.muml");
  const auto& a = m.automata.at("a");
  EXPECT_EQ(a.transitionCount(), 1u);  // kept one copy, loaded without error
  ASSERT_EQ(m.source.duplicateTransitions.size(), 1u);
  const auto& dup = m.source.duplicateTransitions.front();
  EXPECT_EQ(dup.automaton, "a");
  EXPECT_NE(dup.text.find("s0 -> s0"), std::string::npos) << dup.text;
  // The recorded location points at the *second* occurrence.
  EXPECT_EQ(dup.loc.file, "dup.muml");
  EXPECT_EQ(dup.loc.line, 3u);
}

TEST(Loader, DistinctTransitionsAreNotRecordedAsDuplicates) {
  const Model m = loadModel(
      "automaton a { input go; initial s0; s0 -> s0 : go / ; s0 -> s0 : ; }");
  EXPECT_EQ(m.automata.at("a").transitionCount(), 2u);
  EXPECT_TRUE(m.source.duplicateTransitions.empty());
}

TEST(Loader, AllowStatementsRecordScopedSuppressions) {
  const Model m = loadModel(R"mm(
    automaton a { allow MUI003 MUI006; initial s0; s0 -> s0 : ; }
    rtsc R { allow MUI003; input x; location l; initial l; l -> l : trigger x; }
    pattern P { role r uses R; allow MUI004; connector direct; }
  )mm");
  EXPECT_TRUE(m.source.allows("a", "MUI003"));
  EXPECT_TRUE(m.source.allows("a", "MUI006"));
  EXPECT_FALSE(m.source.allows("a", "MUI001"));
  EXPECT_TRUE(m.source.allows("R", "MUI003"));
  EXPECT_TRUE(m.source.allows("P", "MUI004"));
  EXPECT_FALSE(m.source.allows("someoneElse", "MUI003"));
}

TEST(Loader, DefinitionLocationsAreRecorded) {
  const Model m = loadModel(
      "automaton a { initial s0; s0 -> s0 : ; }\n"
      "rtsc R { location l; initial l; l -> l : ; }\n",
      "loc.muml");
  ASSERT_TRUE(m.source.automata.count("a"));
  EXPECT_EQ(m.source.automata.at("a").file, "loc.muml");
  EXPECT_EQ(m.source.automata.at("a").line, 1u);
  ASSERT_TRUE(m.source.statecharts.count("R"));
  EXPECT_EQ(m.source.statecharts.at("R").line, 2u);
}

// ---- The RailCab ground truth ----------------------------------------------

TEST(Shuttle, PatternVerifies) {
  // Fig. 1: the DistanceCoordination pattern itself is correct — constraint,
  // both role invariants, and deadlock freedom hold for the role protocols.
  Tables t;
  const auto result =
      verifyPattern(shuttle::distanceCoordinationPattern(), t.signals, t.props);
  EXPECT_TRUE(result.constraintHolds);
  EXPECT_TRUE(result.deadlockFree);
  ASSERT_EQ(result.roleInvariants.size(), 2u);
  EXPECT_TRUE(result.roleInvariants[0].second)
      << "front role invariant violated";
  EXPECT_TRUE(result.roleInvariants[1].second)
      << "rear role invariant violated";
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result.details.holds);
}

TEST(Shuttle, CorrectLegacyGroundTruth) {
  // Composing the *hidden* correct legacy behavior directly with the context
  // satisfies constraint and deadlock freedom — the integration loop must
  // end in ProvenCorrect for it (Thm. 2).
  Tables t;
  const auto front = shuttle::frontRoleAutomaton(t.signals, t.props);
  const auto legacy = shuttle::correctRearLegacy(t.signals, t.props);
  ASSERT_TRUE(legacy.deterministic());
  const auto prod = automata::compose(front, legacy);
  ctl::VerifyOptions opts;
  const auto r = ctl::verify(
      prod.automaton, ctl::parseFormula(shuttle::kPatternConstraint), opts);
  EXPECT_TRUE(r.holds) << (r.counterexamples.empty()
                               ? ""
                               : prod.renderRun(r.cex().run));
}

TEST(Shuttle, FaultyLegacyGroundTruth) {
  // The faulty legacy violates the pattern constraint when composed with the
  // context: rear in convoy mode while front rejected the proposal.
  Tables t;
  const auto front = shuttle::frontRoleAutomaton(t.signals, t.props);
  const auto legacy = shuttle::faultyRearLegacy(t.signals, t.props);
  ASSERT_TRUE(legacy.deterministic());
  const auto prod = automata::compose(front, legacy);
  ctl::VerifyOptions opts;
  opts.requireDeadlockFree = false;
  const auto r = ctl::verify(
      prod.automaton, ctl::parseFormula(shuttle::kPatternConstraint), opts);
  ASSERT_FALSE(r.holds);
  EXPECT_EQ(r.cex().kind, ctl::Counterexample::Kind::Property);
  // Listing 1.4: the violating state pairs rear convoy with front noConvoy.
  const std::string text = prod.renderRun(r.cex().run);
  EXPECT_NE(text.find("convoy"), std::string::npos);
}

TEST(Shuttle, PortRefinement) {
  Tables t;
  const auto pattern = shuttle::distanceCoordinationPattern();
  const auto& rearRole = pattern.roles[1];

  // The faulty legacy is not even a trace refinement of the rear role: it
  // reaches convoy mode on a trace where the role is still in noConvoy
  // (condition 1), independent of refusals.
  Port faulty{"rearPort", "rearRole",
              shuttle::faultyRearLegacy(t.signals, t.props)};
  const auto bad =
      checkPortRefinement(faulty, rearRole, t.signals, t.props,
                          automata::InteractionMode::AtMostOneSignal, true);
  EXPECT_FALSE(bad.holds);
  EXPECT_NE(bad.reason.find("condition 1"), std::string::npos) << bad.reason;

  // The correct legacy follows the role's traces (condition 1 holds); its
  // only Def.-4 deviation is the committed internal schedule (it refuses
  // interactions the role merely *may* take), surfacing as condition 2.
  Port good{"rearPort", "rearRole",
            shuttle::correctRearLegacy(t.signals, t.props)};
  const auto traceOnly =
      checkPortRefinement(good, rearRole, t.signals, t.props,
                          automata::InteractionMode::AtMostOneSignal, true);
  EXPECT_TRUE(traceOnly.holds) << traceOnly.reason;
  const auto full = checkPortRefinement(good, rearRole, t.signals, t.props);
  EXPECT_FALSE(full.holds);
  EXPECT_NE(full.reason.find("condition 2"), std::string::npos) << full.reason;
}

}  // namespace
}  // namespace mui::muml
