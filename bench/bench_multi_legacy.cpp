// E6 — multiple legacy components (paper Sec. 7 future work): "the
// iterative synthesis will then improve all these models in parallel...
// whether such parallel learning is beneficial depends on the degree in
// which the known context restricts their interaction." We compare true
// per-component parallel learning against learning one composite model, as
// the context restriction varies.

#include <cstdio>

#include "automata/compose.hpp"
#include "bench_util.hpp"
#include "testing/composite.hpp"
#include "testing/legacy.hpp"

int main() {
  using namespace mui;
  bench::printHeader(
      "E6: parallel vs composite learning of two legacy components",
      "Two independent hidden components (6 states each); the joint context "
      "is the composition of mirrored keep% sub-behaviors. Composite "
      "learning sees the product state space (joint state names), parallel "
      "learning keeps two small models.");

  util::TextTable table({"keep%", "strategy", "verdicts", "iterations",
                         "learned facts", "test periods", "model states"});
  constexpr int kSeeds = 4;
  for (const std::uint64_t keep : {30u, 70u, 100u}) {
    std::size_t parIters = 0, cmpIters = 0, parFacts = 0, cmpFacts = 0;
    std::size_t parStates = 0, cmpStates = 0;
    std::uint64_t parPeriods = 0, cmpPeriods = 0;
    std::string parVerdicts, cmpVerdicts;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      bench::Tables t;
      automata::RandomSpec specA;
      specA.states = 6;
      specA.inputs = 1;
      specA.outputs = 1;
      specA.seed = 300 + static_cast<std::uint64_t>(seed);
      specA.name = "la";
      automata::RandomSpec specB = specA;
      specB.seed = 400 + static_cast<std::uint64_t>(seed);
      specB.name = "lb";
      const auto hiddenA = automata::randomAutomaton(specA, t.signals, t.props);
      const auto hiddenB = automata::randomAutomaton(specB, t.signals, t.props);
      const auto ctxA = automata::mirrored(
          automata::subAutomaton(hiddenA, keep, specA.seed + 7, "sa"), "ca");
      const auto ctxB = automata::mirrored(
          automata::subAutomaton(hiddenB, keep, specB.seed + 7, "sb"), "cb");
      const auto context = automata::composeAll({&ctxA, &ctxB}).automaton;

      // Parallel learning.
      testing::AutomatonLegacy legacyA(hiddenA);
      testing::AutomatonLegacy legacyB(hiddenB);
      const auto par = synthesis::IntegrationVerifier(
                           context, {&legacyA, &legacyB}, {})
                           .run();
      parIters += par.iterations;
      parFacts += par.totalLearnedFacts;
      parPeriods += par.totalTestPeriods;
      parStates += par.learnedModels[0].base().stateCount() +
                   par.learnedModels[1].base().stateCount();
      parVerdicts +=
          par.verdict == synthesis::Verdict::ProvenCorrect ? 'P' : 'E';

      // Composite learning.
      std::vector<std::unique_ptr<testing::LegacyComponent>> parts;
      parts.push_back(std::make_unique<testing::AutomatonLegacy>(hiddenA));
      parts.push_back(std::make_unique<testing::AutomatonLegacy>(hiddenB));
      testing::CompositeLegacy composite(std::move(parts), "joint");
      const auto cmp =
          synthesis::IntegrationVerifier(context, composite, {}).run();
      cmpIters += cmp.iterations;
      cmpFacts += cmp.totalLearnedFacts;
      cmpPeriods += cmp.totalTestPeriods;
      cmpStates += cmp.learnedModels[0].base().stateCount();
      cmpVerdicts +=
          cmp.verdict == synthesis::Verdict::ProvenCorrect ? 'P' : 'E';
    }
    const auto avg = [&](auto v) {
      return util::fmt(static_cast<double>(v) / kSeeds, 1);
    };
    table.row({std::to_string(keep), "parallel", parVerdicts, avg(parIters),
               avg(parFacts), avg(parPeriods), avg(parStates)});
    table.row({std::to_string(keep), "composite", cmpVerdicts, avg(cmpIters),
               avg(cmpFacts), avg(cmpPeriods), avg(cmpStates)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("Expected shape: parallel learning needs fewer facts/periods "
              "(per-component models do not blow up into joint states); the "
              "advantage grows with the joint state space.\n");
  return 0;
}
