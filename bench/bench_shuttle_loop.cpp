// The quantitative side of the paper's running example (Figs. 2/6/7,
// Listings 1.1-1.5): per-iteration metrics of the verification/testing/
// learning loop on the RailCab scenario — for the faulty firmware (fast
// conflict detection, Listing 1.4) and the correct firmware (proof without
// learning the whole component, Lemma 5). The qualitative artifacts (DOT
// figures, listing texts) are produced by examples/shuttle_convoy.

#include <cstdio>

#include "bench_util.hpp"
#include "muml/shuttle.hpp"
#include "synthesis/report.hpp"
#include "testing/legacy_shuttle.hpp"

namespace {

using namespace mui;

void runAndReport(const char* title, bool faulty) {
  automata::SignalTableRef signals = std::make_shared<automata::SignalTable>();
  automata::SignalTableRef props = std::make_shared<automata::SignalTable>();
  const auto front = muml::shuttle::frontRoleAutomaton(signals, props);
  testing::FirmwareShuttleLegacy legacy(signals, faulty);

  synthesis::IntegrationConfig cfg;
  cfg.property = muml::shuttle::kPatternConstraint;
  bench::Stopwatch watch;
  const auto res = synthesis::IntegrationVerifier(front, legacy, cfg).run();
  const double ms = watch.ms();

  std::printf("--- %s ---\n", title);
  std::printf("%s", synthesis::renderJournal(res).c_str());
  std::printf("%s(%.1f ms)\n\n", synthesis::renderSummary(res).c_str(), ms);
}

}  // namespace

int main() {
  bench::printHeader(
      "RailCab running example: loop metrics (paper Figs. 2/6/7)",
      "Model S/T/F = learned states/transitions/forbidden entries before "
      "the round's check. The faulty firmware is convicted as soon as the "
      "conflict lies inside the synthesized part; the correct firmware is "
      "proven once the closure survives the check.");
  runAndReport("faulty firmware revision (Fig. 6 / Listing 1.4)", true);
  runAndReport("shipped firmware (Fig. 7 / Listing 1.5)", false);
  return 0;
}
