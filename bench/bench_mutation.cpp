// E11 — mutation adequacy: seed structural defects into the correct rear
// shuttle behavior and measure how the approach deals with them, each
// mutant cross-checked against ground truth (model checking the mutant
// directly against the context):
//
//   killed     — the loop returns RealError, ground truth agrees: the
//                defect matters in this context and was found;
//   equivalent — the loop proves the integration, ground truth agrees: the
//                defect is unobservable in this context (the integration
//                genuinely still works — not a miss!);
//   escaped    — verdict and ground truth disagree (soundness violation;
//                must be zero).
//
// The recorded regression suite (from the unmutated component's run) is
// evaluated on the same mutants for comparison with plain regression
// testing.

#include <cstdio>

#include "automata/compose.hpp"
#include "bench_util.hpp"
#include "ctl/parser.hpp"
#include "muml/integration.hpp"
#include "muml/shuttle.hpp"
#include "synthesis/test_suite.hpp"
#include "testing/legacy.hpp"
#include "testing/mutation.hpp"

namespace {

using namespace mui;
namespace sh = muml::shuttle;

const char* opName(testing::MutationOp op) {
  switch (op) {
    case testing::MutationOp::DeleteTransition:
      return "delete-transition";
    case testing::MutationOp::DropOutputs:
      return "drop-outputs";
    case testing::MutationOp::RedirectTarget:
      return "redirect-target";
  }
  return "?";
}

}  // namespace

int main() {
  bench::printHeader(
      "E11: mutation adequacy of the integration loop",
      "Structural mutants of the correct rear-shuttle behavior vs the front "
      "context (pattern constraint + deadlock freedom). Survivors are "
      "verified context-equivalent by ground truth; escapes must be zero. "
      "suite-kill = mutants failing the regression suite recorded from the "
      "unmutated component.");

  bench::Tables t;
  const auto front = sh::frontRoleAutomaton(t.signals, t.props);
  const auto original = sh::correctRearLegacy(t.signals, t.props);
  // Full requirement: pattern constraint plus both role invariants — the
  // liveness part is what distinguishes a silenced component from a
  // harmless variation.
  const std::string property = muml::makeIntegrationScenario(
                                   sh::distanceCoordinationPattern(), 1,
                                   t.signals, t.props)
                                   .property;

  // The regression suite from the unmutated run.
  synthesis::ComponentTestSuite suite;
  {
    testing::AutomatonLegacy legacy(original);
    synthesis::IntegrationConfig cfg;
    cfg.property = property;
    cfg.recordTests = true;
    suite = synthesis::IntegrationVerifier(front, legacy, cfg)
                .run()
                .recordedTests[0];
  }

  util::TextTable table({"operator", "mutants", "killed", "equivalent",
                         "escaped", "suite-kill", "avg iters", "avg periods"});
  constexpr int kMutantsPerOp = 15;
  for (const auto op : {testing::MutationOp::DeleteTransition,
                        testing::MutationOp::DropOutputs,
                        testing::MutationOp::RedirectTarget}) {
    int made = 0, killed = 0, equivalent = 0, escaped = 0, suiteKilled = 0;
    std::size_t iters = 0;
    std::uint64_t periods = 0;
    for (int seed = 1; made < kMutantsPerOp && seed <= 4 * kMutantsPerOp;
         ++seed) {
      const auto mutant = testing::mutateAutomaton(
          original, op, static_cast<std::uint64_t>(seed));
      if (!mutant) break;
      ++made;

      // Ground truth on the mutant itself.
      const bool truthHolds =
          ctl::verify(automata::compose(front, mutant->first).automaton,
                      ctl::parseFormula(property), {})
              .holds;

      testing::AutomatonLegacy legacy(mutant->first);
      synthesis::IntegrationConfig cfg;
      cfg.property = property;
      const auto res =
          synthesis::IntegrationVerifier(front, legacy, cfg).run();
      iters += res.iterations;
      periods += res.totalTestPeriods;
      const bool proven = res.verdict == synthesis::Verdict::ProvenCorrect;
      if (proven == truthHolds) {
        (proven ? equivalent : killed) += 1;
      } else {
        ++escaped;
        std::printf("ESCAPE (%s seed %d): %s\n", opName(op), seed,
                    mutant->second.describe(original).c_str());
      }

      testing::AutomatonLegacy forSuite(mutant->first);
      if (!synthesis::runSuite(suite, forSuite, *t.signals).allPassed()) {
        ++suiteKilled;
      }
    }
    table.row({opName(op), std::to_string(made), std::to_string(killed),
               std::to_string(equivalent), std::to_string(escaped),
               std::to_string(suiteKilled),
               util::fmt(made ? double(iters) / made : 0, 1),
               util::fmt(made ? double(periods) / made : 0, 1)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Reading: killed + equivalent = all mutants; escaped must stay 0 "
      "(every verdict is cross-checked against direct model checking of "
      "the mutant). Survivors are *context-equivalent* defects — the "
      "paper's point that only the behavior the collaboration reaches "
      "matters. The recorded regression suite flags ANY behavioral change, "
      "including the harmless ones (suite-kill >= killed): it cannot "
      "separate harmful from harmless deviations, whereas the loop proves "
      "the survivors harmless.\n");
  return 0;
}
