// E10: observability overhead — the tracer's design goal is "free unless
// someone is watching" (src/obs/trace.hpp). This harness times the same
// deep-ring model-checking workload (bench_modelcheck.cpp's diameter-bound
// tier) in three instrumentation tiers:
//
//   baseline   — the workload with no span guards at all (what a build
//                with instrumentation compiled out would run),
//   sink-less  — ObsSpan guards in place but no sink installed (the
//                default for every mui run without --trace-out), and
//   enabled    — Tracer::enable() with the default ring capacity.
//
// Tiers are interleaved per trial so ambient machine noise hits all three
// alike, and the median trial is reported. The harness asserts that the
// sink-less tier stays within MUI_BENCH_OBS_MAX_OVERHEAD_PCT (default 5%)
// of baseline plus a small absolute slack for timer noise, and writes
// BENCH_obs.json (schema in docs/PERFORMANCE.md). A per-span micro cost
// (ns/op, disabled and enabled) is measured separately.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "automata/compose.hpp"
#include "bench_util.hpp"
#include "ctl/counterexample.hpp"
#include "ctl/parser.hpp"
#include "obs/trace.hpp"

namespace {

using namespace mui;

/// A deep product: an n-state emit cycle composed with its mirror (same
/// builder as bench_modelcheck.cpp) — diameter ~n, so the unbounded
/// fixpoints do real work per check.
automata::Product makeDeepProduct(bench::Tables& t, std::size_t n) {
  automata::Automaton ring(t.signals, t.props, "ring");
  ring.addOutput("tick");
  for (std::size_t i = 0; i < n; ++i) {
    const auto s = ring.addState("rq" + std::to_string(i));
    ring.labelWithStateName(s);
  }
  ring.markInitial(0);
  const automata::Interaction step{{}, ring.outputs()};
  for (std::size_t i = 0; i < n; ++i) {
    ring.addTransition(static_cast<automata::StateId>(i), step,
                       static_cast<automata::StateId>((i + 1) % n));
  }
  const auto mir = automata::mirrored(ring, "mir");
  return automata::compose(ring, mir);
}

const char* const kFormulas[] = {"EF ring.rq0", "AF mir.rq1",
                                 "A[!ring.rq3 U ring.rq0]", "AG EF ring.rq0"};

/// One workload pass: every formula checked once, optionally wrapped in
/// the pipeline's span shapes (an outer "iteration" span, one "check" span
/// per formula — the density runIntegration produces).
double runTier(const automata::Product& prod,
               const std::vector<ctl::FormulaPtr>& formulas, bool spans) {
  const bench::Stopwatch sw;
  if (spans) {
    const obs::ObsSpan iter("iteration", 0);
    for (const auto& f : formulas) {
      const obs::ObsSpan span("check");
      const auto res = ctl::verify(prod.automaton, f, {});
      if (res.stateCount == 0) std::abort();  // defeat dead-code elimination
    }
  } else {
    for (const auto& f : formulas) {
      const auto res = ctl::verify(prod.automaton, f, {});
      if (res.stateCount == 0) std::abort();
    }
  }
  return sw.ms();
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// Per-span guard cost in nanoseconds: construct+destroy kOps spans.
double spanCostNs(std::size_t ops) {
  const bench::Stopwatch sw;
  for (std::size_t i = 0; i < ops; ++i) {
    const obs::ObsSpan span("micro");
  }
  return sw.ms() * 1e6 / static_cast<double>(ops);
}

double maxOverheadPct(bool smoke) {
  if (const char* env = std::getenv("MUI_BENCH_OBS_MAX_OVERHEAD_PCT")) {
    if (env[0] != '\0') return std::atof(env);
  }
  // Smoke tiers finish in single-digit milliseconds where timer noise
  // dominates; the gate is meant for the full-size run.
  return smoke ? 50.0 : 5.0;
}

}  // namespace

int main() {
  const bool smoke = bench::smokeMode();
  const double maxPct = maxOverheadPct(smoke);
  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{256, 1024}
            : std::vector<std::size_t>{1024, 4096};
  const int kTrials = smoke ? 3 : 7;

  bench::printHeader(
      "E10: tracer overhead on deep-ring model checking",
      "Baseline (no guards) vs sink-less (guards, tracing off) vs enabled "
      "(default ring). Interleaved trials, median reported; the sink-less "
      "tier must stay within the overhead budget of baseline.");

  util::TextTable table({"size", "product states", "baseline ms",
                         "sink-less ms", "enabled ms", "sink-less ovh",
                         "enabled ovh", "events"});
  std::string json = "{\"bench\":\"obs\",\"unit\":\"ms\",\"smoke\":";
  json += smoke ? "true" : "false";
  json += ",\"maxOverheadPct\":" + util::fmt(maxPct, 1) + ",\"tiers\":[";

  bool pass = true;
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    bench::Tables t;
    const auto prod = makeDeepProduct(t, sizes[si]);
    std::vector<ctl::FormulaPtr> formulas;
    for (const char* text : kFormulas) {
      formulas.push_back(ctl::parseFormula(text));
    }

    obs::Tracer::disable();
    obs::Tracer::clear();
    runTier(prod, formulas, false);  // warm-up: fault in code and caches

    std::vector<double> base, sinkless, enabled;
    std::size_t events = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      base.push_back(runTier(prod, formulas, false));
      sinkless.push_back(runTier(prod, formulas, true));
      obs::Tracer::enable();
      enabled.push_back(runTier(prod, formulas, true));
      events = obs::Tracer::eventCount();
      obs::Tracer::disable();
      obs::Tracer::clear();
    }

    const double b = median(base);
    const double s = median(sinkless);
    const double e = median(enabled);
    const double sPct = b > 0 ? (s - b) / b * 100.0 : 0;
    const double ePct = b > 0 ? (e - b) / b * 100.0 : 0;
    // Absolute slack absorbs scheduler jitter on sub-millisecond tiers.
    const bool ok = s <= b * (1.0 + maxPct / 100.0) + 0.5;
    pass = pass && ok;

    table.row({std::to_string(sizes[si]),
               std::to_string(prod.automaton.stateCount()), util::fmt(b, 3),
               util::fmt(s, 3), util::fmt(e, 3), util::fmt(sPct, 1) + "%",
               util::fmt(ePct, 1) + "%", std::to_string(events)});
    if (si) json += ',';
    json += "{\"size\":" + std::to_string(sizes[si]) +
            ",\"productStates\":" + std::to_string(prod.automaton.stateCount()) +
            ",\"baselineMs\":" + util::fmt(b, 3) +
            ",\"sinklessMs\":" + util::fmt(s, 3) +
            ",\"enabledMs\":" + util::fmt(e, 3) +
            ",\"sinklessOverheadPct\":" + util::fmt(sPct, 2) +
            ",\"enabledOverheadPct\":" + util::fmt(ePct, 2) +
            ",\"events\":" + std::to_string(events) +
            ",\"withinBudget\":" + (ok ? "true" : "false") + "}";
  }
  std::printf("%s", table.str().c_str());

  // Micro cost of one guard, disabled and enabled.
  constexpr std::size_t kOps = 1 << 20;
  obs::Tracer::disable();
  obs::Tracer::clear();
  const double disabledNs = spanCostNs(kOps);
  obs::Tracer::enable();
  const double enabledNs = spanCostNs(kOps);
  obs::Tracer::disable();
  obs::Tracer::clear();
  std::printf("span guard: %.1f ns/op disabled, %.1f ns/op enabled\n",
              disabledNs, enabledNs);

  json += "],\"spanCost\":{\"disabledNsPerOp\":" + util::fmt(disabledNs, 2) +
          ",\"enabledNsPerOp\":" + util::fmt(enabledNs, 2) +
          "},\"pass\":" + (pass ? "true" : "false") + "}\n";
  bench::writeBenchJson("BENCH_obs.json", json);

  if (!pass) {
    std::fprintf(stderr,
                 "bench_obs: sink-less tracing exceeded the %.1f%% overhead "
                 "budget\n",
                 maxPct);
    return 1;
  }
  return 0;
}
