#pragma once
// Shared helpers for the experiment harness (see DESIGN.md §5 for the
// experiment index). The plain-table benches print one TextTable per
// experiment; the micro benches use google-benchmark.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "automata/random.hpp"
#include "synthesis/verifier.hpp"
#include "util/json.hpp"
#include "util/text_table.hpp"

namespace mui::bench {

struct Tables {
  automata::SignalTableRef signals = std::make_shared<automata::SignalTable>();
  automata::SignalTableRef props = std::make_shared<automata::SignalTable>();
};

inline const char* verdictName(synthesis::Verdict v) {
  switch (v) {
    case synthesis::Verdict::ProvenCorrect:
      return "proven";
    case synthesis::Verdict::RealError:
      return "real-error";
    case synthesis::Verdict::IterationLimit:
      return "iter-limit";
    case synthesis::Verdict::Unsupported:
      return "unsupported";
    case synthesis::Verdict::Cancelled:
      return "cancelled";
    case synthesis::Verdict::AdapterFailure:
      return "adapter-failure";
  }
  return "?";
}

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// A random closed integration scenario: hidden legacy + a context that
/// exercises roughly `contextKeepPct`% of it (the mirrored sub-behavior).
struct Scenario {
  Tables t;
  automata::Automaton hidden;
  automata::Automaton context;

  Scenario(std::size_t legacyStates, std::uint64_t seed,
           std::uint64_t contextKeepPct, std::size_t signalsEachWay = 2)
      : hidden(makeHidden(t, legacyStates, seed, signalsEachWay)),
        context(automata::mirrored(
            automata::subAutomaton(hidden, contextKeepPct, seed + 101,
                                   "lg_sub"),
            "ctx")) {}

 private:
  static automata::Automaton makeHidden(Tables& t, std::size_t states,
                                        std::uint64_t seed,
                                        std::size_t signalsEachWay) {
    automata::RandomSpec spec;
    spec.states = states;
    spec.inputs = signalsEachWay;
    spec.outputs = signalsEachWay;
    spec.densityPct = 40;
    spec.seed = seed;
    spec.name = "lg";
    return automata::randomAutomaton(spec, t.signals, t.props);
  }
};

inline void printHeader(const char* id, const char* claim) {
  std::printf("\n### %s\n%s\n\n", id, claim);
}

/// Smoke mode (MUI_BENCH_SMOKE=1): small sizes, machine-checkable output
/// only — what the perf-smoke CI job runs. Timing is reported but never
/// gated; only correctness mismatches fail the process.
inline bool smokeMode() {
  const char* env = std::getenv("MUI_BENCH_SMOKE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/// Directory for the BENCH_*.json artifacts: $MUI_BENCH_OUT_DIR if set, else
/// the MUI_BENCH_OUT_DIR compile definition (the repo root), else ".".
inline std::string benchOutDir() {
  if (const char* env = std::getenv("MUI_BENCH_OUT_DIR")) {
    if (env[0] != '\0') return env;
  }
#ifdef MUI_BENCH_OUT_DIR
  return MUI_BENCH_OUT_DIR;
#else
  return ".";
#endif
}

/// Writes a machine-readable benchmark artifact (docs/PERFORMANCE.md has the
/// schemas) and echoes the path. Returns false if the file cannot be opened.
inline bool writeBenchJson(const std::string& filename,
                           const std::string& payload) {
  const std::string path = benchOutDir() + "/" + filename;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: could not write %s\n", path.c_str());
    return false;
  }
  std::fwrite(payload.data(), 1, payload.size(), f);
  std::fclose(f);
  std::printf("bench: wrote %s\n", path.c_str());
  return true;
}

/// Escapes a string for embedding in the JSON artifacts (formula texts).
/// Forwards to the tree's one escaper so bench artifacts get the same
/// control-character and UTF-8 handling as every other writer.
inline std::string jsonEscape(const std::string& s) {
  return util::jsonEscape(s);
}

}  // namespace mui::bench
