#pragma once
// Shared helpers for the experiment harness (see DESIGN.md §5 for the
// experiment index). The plain-table benches print one TextTable per
// experiment; the micro benches use google-benchmark.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "automata/random.hpp"
#include "synthesis/verifier.hpp"
#include "util/text_table.hpp"

namespace mui::bench {

struct Tables {
  automata::SignalTableRef signals = std::make_shared<automata::SignalTable>();
  automata::SignalTableRef props = std::make_shared<automata::SignalTable>();
};

inline const char* verdictName(synthesis::Verdict v) {
  switch (v) {
    case synthesis::Verdict::ProvenCorrect:
      return "proven";
    case synthesis::Verdict::RealError:
      return "real-error";
    case synthesis::Verdict::IterationLimit:
      return "iter-limit";
    case synthesis::Verdict::Unsupported:
      return "unsupported";
    case synthesis::Verdict::Cancelled:
      return "cancelled";
  }
  return "?";
}

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// A random closed integration scenario: hidden legacy + a context that
/// exercises roughly `contextKeepPct`% of it (the mirrored sub-behavior).
struct Scenario {
  Tables t;
  automata::Automaton hidden;
  automata::Automaton context;

  Scenario(std::size_t legacyStates, std::uint64_t seed,
           std::uint64_t contextKeepPct, std::size_t signalsEachWay = 2)
      : hidden(makeHidden(t, legacyStates, seed, signalsEachWay)),
        context(automata::mirrored(
            automata::subAutomaton(hidden, contextKeepPct, seed + 101,
                                   "lg_sub"),
            "ctx")) {}

 private:
  static automata::Automaton makeHidden(Tables& t, std::size_t states,
                                        std::uint64_t seed,
                                        std::size_t signalsEachWay) {
    automata::RandomSpec spec;
    spec.states = states;
    spec.inputs = signalsEachWay;
    spec.outputs = signalsEachWay;
    spec.densityPct = 40;
    spec.seed = seed;
    spec.name = "lg";
    return automata::randomAutomaton(spec, t.signals, t.props);
  }
};

inline void printHeader(const char* id, const char* claim) {
  std::printf("\n### %s\n%s\n\n", id, claim);
}

}  // namespace mui::bench
