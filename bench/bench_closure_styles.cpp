// E10 — closure-style ablation (DESIGN.md §6.4): the literal Def.-9 closure
// (PaperExact) adds chaos edges for interactions already in T, so a
// counterexample may wander into chaos along *known* interactions; testing
// it then confirms known behavior and learns nothing — the loop can stall.
// The DeterministicTarget refinement (valid because the legacy component is
// deterministic, Sec. 4.3) only sends genuinely unknown interactions to
// chaos, making learning progress strict (Thm. 2). This table measures the
// difference.

#include <cstdio>

#include "bench_util.hpp"
#include "muml/shuttle.hpp"
#include "testing/legacy.hpp"
#include "testing/legacy_shuttle.hpp"

int main() {
  using namespace mui;
  bench::printHeader(
      "E10: PaperExact vs DeterministicTarget chaotic closures",
      "Same scenarios, both closure styles. PaperExact may stop with "
      "'unsupported' (no learning progress) — never with a wrong verdict; "
      "DeterministicTarget always terminates with a decision.");

  util::TextTable table({"scenario", "style", "verdict", "iterations",
                         "test periods", "closure S (last)"});

  const auto runOne = [&](const char* name, const automata::Automaton& ctx,
                          testing::LegacyComponent& legacy,
                          const std::string& property,
                          automata::ClosureStyle style) {
    synthesis::IntegrationConfig cfg;
    cfg.property = property;
    cfg.closureStyle = style;
    cfg.maxIterations = 500;
    const auto res = synthesis::IntegrationVerifier(ctx, legacy, cfg).run();
    table.row({name,
               style == automata::ClosureStyle::PaperExact ? "paper-exact"
                                                           : "deterministic",
               bench::verdictName(res.verdict),
               std::to_string(res.iterations),
               std::to_string(res.totalTestPeriods),
               res.journal.empty()
                   ? "-"
                   : std::to_string(res.journal.back().closureStates)});
  };

  for (const auto style : {automata::ClosureStyle::DeterministicTarget,
                           automata::ClosureStyle::PaperExact}) {
    {
      bench::Tables t;
      const auto front = muml::shuttle::frontRoleAutomaton(t.signals, t.props);
      testing::FirmwareShuttleLegacy good(t.signals, false);
      runOne("shuttle correct", front, good, muml::shuttle::kPatternConstraint,
             style);
      testing::FirmwareShuttleLegacy bad(t.signals, true);
      runOne("shuttle faulty", front, bad, muml::shuttle::kPatternConstraint,
             style);
    }
    for (int seed = 1; seed <= 3; ++seed) {
      bench::Scenario sc(8, 500 + static_cast<std::uint64_t>(seed), 70);
      testing::AutomatonLegacy legacy(sc.hidden);
      runOne(("random #" + std::to_string(seed)).c_str(), sc.context, legacy,
             "", style);
    }
  }
  std::printf("%s\n", table.str().c_str());
  return 0;
}
