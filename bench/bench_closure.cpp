// E8 (part 1): chaotic automaton and chaotic closure construction
// throughput (Defs. 8/9) as a function of the learned-model size and the
// interaction alphabet. The closure is rebuilt every iteration of the
// synthesis loop, so its cost bounds the loop's per-iteration overhead.

#include <benchmark/benchmark.h>

#include "automata/chaos.hpp"
#include "automata/random.hpp"
#include "bench_util.hpp"

namespace {

using namespace mui;

void BM_ChaoticAutomaton(benchmark::State& state) {
  bench::Tables t;
  automata::SignalSet ins, outs;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    ins.set(t.signals->intern("i" + std::to_string(i)));
    outs.set(t.signals->intern("o" + std::to_string(i)));
  }
  const auto alphabet = automata::makeAlphabet(
      ins, outs, automata::InteractionMode::AtMostOneSignal);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        automata::chaoticAutomaton(t.signals, t.props, ins, outs, alphabet));
  }
  state.counters["alphabet"] = static_cast<double>(alphabet.size());
}
BENCHMARK(BM_ChaoticAutomaton)->Arg(2)->Arg(8)->Arg(32);

void BM_ChaoticClosure(benchmark::State& state) {
  // A learned model with `range(0)` states over a fixed interface.
  bench::Tables t;
  automata::RandomSpec spec;
  spec.states = static_cast<std::size_t>(state.range(0));
  spec.inputs = 3;
  spec.outputs = 3;
  spec.seed = 7;
  spec.name = "m";
  const auto model = automata::randomAutomaton(spec, t.signals, t.props);
  automata::IncompleteAutomaton inc(model);
  const auto alphabet = automata::makeAlphabet(
      model.inputs(), model.outputs(),
      automata::InteractionMode::AtMostOneSignal);
  std::size_t closureStates = 0;
  for (auto _ : state) {
    const auto c = automata::chaoticClosure(inc, alphabet);
    closureStates = c.automaton.stateCount();
    benchmark::DoNotOptimize(c);
  }
  state.counters["closure_states"] = static_cast<double>(closureStates);
}
BENCHMARK(BM_ChaoticClosure)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_ChaoticClosureFullPowerset(benchmark::State& state) {
  // Exact Def. 8/9 alphabet (℘(I) × ℘(O)): exponential, small interfaces.
  bench::Tables t;
  automata::RandomSpec spec;
  spec.states = 8;
  spec.inputs = static_cast<std::size_t>(state.range(0));
  spec.outputs = static_cast<std::size_t>(state.range(0));
  spec.mode = automata::InteractionMode::FullPowerset;
  spec.seed = 7;
  spec.name = "m";
  const auto model = automata::randomAutomaton(spec, t.signals, t.props);
  automata::IncompleteAutomaton inc(model);
  const auto alphabet =
      automata::makeAlphabet(model.inputs(), model.outputs(),
                             automata::InteractionMode::FullPowerset);
  for (auto _ : state) {
    benchmark::DoNotOptimize(automata::chaoticClosure(inc, alphabet));
  }
  state.counters["alphabet"] = static_cast<double>(alphabet.size());
}
BENCHMARK(BM_ChaoticClosureFullPowerset)->Arg(1)->Arg(3)->Arg(5);

}  // namespace

BENCHMARK_MAIN();
