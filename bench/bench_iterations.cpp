// E1 — termination and learning effort (paper Sec. 4.4): the number of
// verification/testing/learning iterations, the knowledge learned, and the
// test effort as the legacy component grows. The paper argues the iteration
// count is bounded because every round strictly increases the learned
// knowledge; this table shows the bound is loose in practice — the loop
// stops long before the model is complete.

#include <cstdio>

#include "bench_util.hpp"
#include "testing/legacy.hpp"

int main() {
  using namespace mui;
  bench::printHeader(
      "E1: iterations and learned knowledge vs component size",
      "Scenario: random hidden component, context = mirrored 60% "
      "sub-behavior, deadlock-freedom requirement. Iterations grow roughly "
      "with the context-reachable part, not with the full component "
      "(Sec. 4.4 / Thm. 2: knowledge strictly increases and is bounded by "
      "the complete model).");

  util::TextTable table({"legacy states", "hidden trans", "verdict",
                         "iterations", "learned states", "learned trans",
                         "learned refusals", "test periods", "wall ms"});
  for (const std::size_t states : {4u, 8u, 16u, 32u, 64u}) {
    // Aggregate a few seeds per size.
    double ms = 0;
    std::size_t iters = 0, lStates = 0, lTrans = 0, lForb = 0, hTrans = 0;
    std::uint64_t periods = 0;
    std::string verdicts;
    constexpr int kSeeds = 5;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      bench::Scenario sc(states, static_cast<std::uint64_t>(seed) * 13,
                         /*contextKeepPct=*/60);
      testing::AutomatonLegacy legacy(sc.hidden);
      synthesis::IntegrationConfig cfg;
      bench::Stopwatch watch;
      const auto res =
          synthesis::IntegrationVerifier(sc.context, legacy, cfg).run();
      ms += watch.ms();
      iters += res.iterations;
      lStates += res.learnedModels[0].base().stateCount();
      lTrans += res.learnedModels[0].base().transitionCount();
      lForb += res.learnedModels[0].forbiddenCount();
      periods += res.totalTestPeriods;
      hTrans += sc.hidden.transitionCount();
      verdicts += res.verdict == synthesis::Verdict::ProvenCorrect ? 'P' : 'E';
    }
    const auto avg = [&](std::size_t v) {
      return util::fmt(static_cast<double>(v) / kSeeds, 1);
    };
    table.row({std::to_string(states), avg(hTrans), verdicts, avg(iters),
               avg(lStates), avg(lTrans), avg(lForb),
               avg(static_cast<std::size_t>(periods)),
               util::fmt(ms / kSeeds, 1)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("verdict column: one letter per seed (P = proven correct, "
              "E = real error found)\n");
  return 0;
}
