// E1 — termination and learning effort (paper Sec. 4.4): the number of
// verification/testing/learning iterations, the knowledge learned, and the
// test effort as the legacy component grows. The paper argues the iteration
// count is bounded because every round strictly increases the learned
// knowledge; this table shows the bound is loose in practice — the loop
// stops long before the model is complete.
//
// The harness runs every scenario twice — incrementalCompose off (the
// original from-scratch recomposition) and on (IncrementalComposer arenas) —
// asserts identical verdicts and iteration counts, and writes
// BENCH_iterations.json with the recomposition-work comparison (schema in
// docs/PERFORMANCE.md). A verdict/iteration mismatch fails the process
// (the perf-smoke CI gate); timing never does. MUI_BENCH_SMOKE=1 restricts
// the run to the small sizes.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "testing/legacy.hpp"

int main() {
  using namespace mui;
  const bool smoke = bench::smokeMode();
  bench::printHeader(
      "E1: iterations and learned knowledge vs component size",
      "Scenario: random hidden component, context = mirrored 60% "
      "sub-behavior, deadlock-freedom requirement. Iterations grow roughly "
      "with the context-reachable part, not with the full component "
      "(Sec. 4.4 / Thm. 2: knowledge strictly increases and is bounded by "
      "the complete model). Each scenario runs with incremental composition "
      "off and on; 'recomposed' counts product states built from scratch "
      "vs. interned fresh, 'reused' the arena hits.");

  util::TextTable table({"legacy states", "hidden trans", "verdict",
                         "iterations", "learned states", "learned trans",
                         "learned refusals", "test periods", "scratch ms",
                         "incr ms", "recomposed", "incr new", "incr reused"});
  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{4, 8}
            : std::vector<std::size_t>{4, 8, 16, 32, 64};
  std::string json = "{\"bench\":\"iterations\",\"unit\":\"ms\",\"smoke\":";
  json += smoke ? "true" : "false";
  json += ",\"sizes\":[";
  bool allMatch = true;
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    const std::size_t states = sizes[si];
    // Aggregate a few seeds per size.
    double msScratch = 0, msIncr = 0;
    std::size_t iters = 0, lStates = 0, lTrans = 0, lForb = 0, hTrans = 0;
    std::size_t composedScratch = 0, newIncr = 0, reusedIncr = 0;
    std::uint64_t periods = 0;
    std::string verdicts;
    bool match = true;
    constexpr int kSeeds = 5;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      bench::Scenario sc(states, static_cast<std::uint64_t>(seed) * 13,
                         /*contextKeepPct=*/60);
      const auto runOnce = [&](bool incremental) {
        testing::AutomatonLegacy legacy(sc.hidden);
        synthesis::IntegrationConfig cfg;
        cfg.incrementalCompose = incremental;
        return synthesis::IntegrationVerifier(sc.context, legacy, cfg).run();
      };
      bench::Stopwatch w1;
      const auto scratch = runOnce(false);
      msScratch += w1.ms();
      bench::Stopwatch w2;
      const auto incr = runOnce(true);
      msIncr += w2.ms();

      if (scratch.verdict != incr.verdict ||
          scratch.iterations != incr.iterations) {
        std::fprintf(stderr,
                     "MISMATCH: states %zu seed %d — scratch %s/%zu iters, "
                     "incremental %s/%zu iters\n",
                     states, seed, bench::verdictName(scratch.verdict),
                     scratch.iterations, bench::verdictName(incr.verdict),
                     incr.iterations);
        match = false;
      }
      composedScratch += scratch.totalProductStatesNew;
      newIncr += incr.totalProductStatesNew;
      reusedIncr += incr.totalProductStatesReused;
      iters += incr.iterations;
      lStates += incr.learnedModels[0].base().stateCount();
      lTrans += incr.learnedModels[0].base().transitionCount();
      lForb += incr.learnedModels[0].forbiddenCount();
      periods += incr.totalTestPeriods;
      hTrans += sc.hidden.transitionCount();
      verdicts += incr.verdict == synthesis::Verdict::ProvenCorrect ? 'P' : 'E';
    }
    allMatch = allMatch && match;
    const auto avg = [&](std::size_t v) {
      return util::fmt(static_cast<double>(v) / kSeeds, 1);
    };
    table.row({std::to_string(states), avg(hTrans), verdicts, avg(iters),
               avg(lStates), avg(lTrans), avg(lForb),
               avg(static_cast<std::size_t>(periods)),
               util::fmt(msScratch / kSeeds, 1), util::fmt(msIncr / kSeeds, 1),
               avg(composedScratch), avg(newIncr), avg(reusedIncr)});
    if (si) json += ',';
    json += "{\"legacyStates\":" + std::to_string(states) +
            ",\"seeds\":" + std::to_string(kSeeds) +
            ",\"iterations\":" + std::to_string(iters) +
            ",\"scratchMs\":" + util::fmt(msScratch, 3) +
            ",\"incrementalMs\":" + util::fmt(msIncr, 3) +
            ",\"statesComposedScratch\":" + std::to_string(composedScratch) +
            ",\"statesNewIncremental\":" + std::to_string(newIncr) +
            ",\"statesReusedIncremental\":" + std::to_string(reusedIncr) +
            ",\"verdictsMatch\":" + (match ? "true" : "false") + "}";
  }
  json += "]}\n";
  std::printf("%s\n", table.str().c_str());
  std::printf("verdict column: one letter per seed (P = proven correct, "
              "E = real error found)\n");
  bench::writeBenchJson("BENCH_iterations.json", json);
  return allMatch ? 0 : 1;
}
