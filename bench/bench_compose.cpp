// E8 (part 2): synchronous parallel composition throughput (Def. 3) — the
// reachable product construction of context, closure(s) and connectors that
// every verification round performs.

#include <benchmark/benchmark.h>

#include "automata/compose.hpp"
#include "automata/random.hpp"
#include "bench_util.hpp"
#include "muml/channel.hpp"

namespace {

using namespace mui;

void BM_ComposePair(benchmark::State& state) {
  bench::Tables t;
  automata::RandomSpec spec;
  spec.states = static_cast<std::size_t>(state.range(0));
  spec.inputs = 2;
  spec.outputs = 2;
  spec.seed = 5;
  spec.name = "lg";
  const auto a = automata::randomAutomaton(spec, t.signals, t.props);
  const auto b = automata::mirrored(a, "ctx");
  std::size_t productStates = 0;
  for (auto _ : state) {
    const auto p = automata::compose(a, b);
    productStates = p.automaton.stateCount();
    benchmark::DoNotOptimize(p);
  }
  state.counters["product_states"] = static_cast<double>(productStates);
}
BENCHMARK(BM_ComposePair)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_ComposeWithChannel(benchmark::State& state) {
  // Three-way composition with an explicit QoS connector in the middle.
  bench::Tables t;
  automata::Automaton snd(t.signals, t.props, "snd");
  snd.addOutput("m_src");
  snd.addInput("r_dst");
  snd.addState("s0");
  snd.addState("s1");
  snd.markInitial(0);
  snd.addTransition(0, {{}, automata::SignalSet::single(
                               *t.signals->lookup("m_src"))},
                    1);
  snd.addTransition(
      1, {automata::SignalSet::single(*t.signals->lookup("r_dst")), {}}, 0);
  snd.addTransition(1, {}, 1);

  automata::Automaton rcv(t.signals, t.props, "rcv");
  rcv.addInput("m_dst");
  rcv.addOutput("r_src");
  rcv.addState("r0");
  rcv.addState("r1");
  rcv.markInitial(0);
  rcv.addTransition(
      0, {automata::SignalSet::single(*t.signals->lookup("m_dst")), {}}, 1);
  rcv.addTransition(1, {{}, automata::SignalSet::single(
                               *t.signals->lookup("r_src"))},
                    0);
  rcv.addTransition(0, {}, 0);

  const auto channel = muml::makeChannel(
      t.signals, t.props,
      {"ch",
       {{"m_src", "m_dst"}, {"r_src", "r_dst"}},
       static_cast<std::uint32_t>(state.range(0)),
       2,
       false});
  for (auto _ : state) {
    benchmark::DoNotOptimize(automata::composeAll({&snd, &channel, &rcv}));
  }
  state.counters["channel_states"] = static_cast<double>(channel.stateCount());
}
BENCHMARK(BM_ComposeWithChannel)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
