// E4: model-checker scaling — the paper's premise that "verification covers
// the inherently subtle interaction completely, which testing cannot":
// explicit-state CCTL checking throughput (states/second) and
// counterexample extraction cost on composed systems of growing size.

#include <benchmark/benchmark.h>

#include "automata/compose.hpp"
#include "bench_util.hpp"
#include "ctl/counterexample.hpp"
#include "ctl/parser.hpp"

namespace {

using namespace mui;

automata::Product makeProduct(bench::Tables& t, std::size_t n,
                              std::uint64_t seed) {
  automata::RandomSpec spec;
  spec.states = n;
  spec.inputs = 2;
  spec.outputs = 2;
  spec.seed = seed;
  spec.name = "lg";
  const auto a = automata::randomAutomaton(spec, t.signals, t.props);
  automata::RandomSpec specB = spec;
  specB.name = "aux";
  specB.seed = seed + 1;
  const auto b = automata::randomAutomaton(specB, t.signals, t.props);
  const auto am = automata::mirrored(a, "ctxa");
  // Compose a with its mirror plus an orthogonal bystander for volume.
  const auto prod = automata::composeAll({&a, &am, &b});
  return prod;
}

void BM_InvariantCheck(benchmark::State& state) {
  bench::Tables t;
  const auto prod = makeProduct(t, static_cast<std::size_t>(state.range(0)), 3);
  const auto phi = ctl::parseFormula("AG !(lg.lg_q1 && ctxa.lg_q2)");
  ctl::VerifyOptions opts;
  opts.requireDeadlockFree = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctl::verify(prod.automaton, phi, opts));
  }
  state.counters["product_states"] =
      static_cast<double>(prod.automaton.stateCount());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(
                              prod.automaton.stateCount()));
}
BENCHMARK(BM_InvariantCheck)->Arg(16)->Arg(64)->Arg(256);

void BM_BoundedLeadsTo(benchmark::State& state) {
  bench::Tables t;
  const auto prod = makeProduct(t, 64, 3);
  const auto phi = ctl::parseFormula(
      "AG (lg.lg_q1 -> AF[1," + std::to_string(state.range(0)) +
      "] ctxa.lg_q0)");
  ctl::VerifyOptions opts;
  opts.requireDeadlockFree = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctl::verify(prod.automaton, phi, opts));
  }
}
BENCHMARK(BM_BoundedLeadsTo)->Arg(2)->Arg(8)->Arg(32);

void BM_FixpointOperators(benchmark::State& state) {
  bench::Tables t;
  const auto prod = makeProduct(t, static_cast<std::size_t>(state.range(0)), 9);
  ctl::Checker checker(prod.automaton);
  const auto phi =
      ctl::parseFormula("A[!lg.lg_q2 U (lg.lg_q2 || deadlock)] && EG !deadlock");
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.evaluate(phi));
  }
}
BENCHMARK(BM_FixpointOperators)->Arg(16)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
