// E4: model-checker scaling — the paper's premise that "verification covers
// the inherently subtle interaction completely, which testing cannot":
// explicit-state CCTL checking throughput (states/second) and
// counterexample extraction cost on composed systems of growing size.
//
// Besides the google-benchmark micro benches, a speedup harness runs first:
// it times the worklist Checker against the retained naive ReferenceChecker
// on the same products and formula set, cross-checks every satisfaction set
// state-by-state, and writes BENCH_modelcheck.json (schema in
// docs/PERFORMANCE.md). With MUI_BENCH_SMOKE=1 only small sizes run and the
// micro benches are skipped; a satisfaction-set mismatch fails the process
// either way (the perf-smoke CI gate).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <vector>

#include "automata/compose.hpp"
#include "bench_util.hpp"
#include "ctl/counterexample.hpp"
#include "ctl/parser.hpp"
#include "ctl/reference.hpp"

namespace {

using namespace mui;

automata::Product makeProduct(bench::Tables& t, std::size_t n,
                              std::uint64_t seed) {
  automata::RandomSpec spec;
  spec.states = n;
  spec.inputs = 2;
  spec.outputs = 2;
  spec.seed = seed;
  spec.name = "lg";
  const auto a = automata::randomAutomaton(spec, t.signals, t.props);
  automata::RandomSpec specB = spec;
  specB.name = "aux";
  specB.seed = seed + 1;
  const auto b = automata::randomAutomaton(specB, t.signals, t.props);
  const auto am = automata::mirrored(a, "ctxa");
  // Compose a with its mirror plus an orthogonal bystander for volume.
  const auto prod = automata::composeAll({&a, &am, &b});
  return prod;
}

void BM_InvariantCheck(benchmark::State& state) {
  bench::Tables t;
  const auto prod = makeProduct(t, static_cast<std::size_t>(state.range(0)), 3);
  const auto phi = ctl::parseFormula("AG !(lg.lg_q1 && ctxa.lg_q2)");
  ctl::VerifyOptions opts;
  opts.requireDeadlockFree = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctl::verify(prod.automaton, phi, opts));
  }
  state.counters["product_states"] =
      static_cast<double>(prod.automaton.stateCount());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(
                              prod.automaton.stateCount()));
}
BENCHMARK(BM_InvariantCheck)->Arg(16)->Arg(64)->Arg(256);

void BM_BoundedLeadsTo(benchmark::State& state) {
  bench::Tables t;
  const auto prod = makeProduct(t, 64, 3);
  const auto phi = ctl::parseFormula(
      "AG (lg.lg_q1 -> AF[1," + std::to_string(state.range(0)) +
      "] ctxa.lg_q0)");
  ctl::VerifyOptions opts;
  opts.requireDeadlockFree = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctl::verify(prod.automaton, phi, opts));
  }
}
BENCHMARK(BM_BoundedLeadsTo)->Arg(2)->Arg(8)->Arg(32);

void BM_FixpointOperators(benchmark::State& state) {
  bench::Tables t;
  const auto prod = makeProduct(t, static_cast<std::size_t>(state.range(0)), 9);
  ctl::Checker checker(prod.automaton);
  const auto phi =
      ctl::parseFormula("A[!lg.lg_q2 U (lg.lg_q2 || deadlock)] && EG !deadlock");
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.evaluate(phi));
  }
}
BENCHMARK(BM_FixpointOperators)->Arg(16)->Arg(128);

/// A deep product: an n-state emit cycle composed with its mirror. The
/// product has ~n states and diameter ~n, so unbounded fixpoints must
/// propagate across the whole ring — the naive sweep checker needs ~n
/// whole-state-space passes (O(S²)) where the worklist engine stays O(S+E).
automata::Product makeDeepProduct(bench::Tables& t, std::size_t n) {
  automata::Automaton ring(t.signals, t.props, "ring");
  ring.addOutput("tick");
  for (std::size_t i = 0; i < n; ++i) {
    const auto s = ring.addState("rq" + std::to_string(i));
    ring.labelWithStateName(s);
  }
  ring.markInitial(0);
  const automata::Interaction step{{}, ring.outputs()};
  for (std::size_t i = 0; i < n; ++i) {
    ring.addTransition(static_cast<automata::StateId>(i), step,
                       static_cast<automata::StateId>((i + 1) % n));
  }
  const auto mir = automata::mirrored(ring, "mir");
  return automata::compose(ring, mir);
}

struct Workload {
  const char* name;
  std::vector<std::size_t> sizes;  // instance size parameter per tier
  automata::Product (*build)(bench::Tables&, std::size_t);
  std::vector<std::string> formulaTexts;
};

automata::Product buildRandom(bench::Tables& t, std::size_t n) {
  return makeProduct(t, n, 3);
}

/// Reference-vs-worklist speedup for one workload; appends a JSON workload
/// object to `json`. Returns false on any satisfaction-set disagreement.
bool runWorkload(const Workload& w, std::string& json) {
  util::TextTable table({"size", "product states", "product trans",
                         "reference ms", "worklist ms", "speedup", "match"});
  json += "{\"name\":\"" + std::string(w.name) + "\",\"formulas\":[";
  for (std::size_t i = 0; i < w.formulaTexts.size(); ++i) {
    if (i) json += ',';
    json += "\"" + bench::jsonEscape(w.formulaTexts[i]) + "\"";
  }
  json += "],\"sizes\":[";

  bool allMatch = true;
  for (std::size_t si = 0; si < w.sizes.size(); ++si) {
    bench::Tables t;
    const auto prod = w.build(t, w.sizes[si]);
    std::vector<ctl::FormulaPtr> formulas;
    for (const auto& text : w.formulaTexts) {
      formulas.push_back(ctl::parseFormula(text));
    }

    // Time engine construction + the full formula set; best of 3 rounds.
    constexpr int kReps = 3;
    double refMs = -1, fastMs = -1;
    bool match = true;
    for (int rep = 0; rep < kReps; ++rep) {
      bench::Stopwatch w1;
      ctl::ReferenceChecker ref(prod.automaton);
      std::vector<std::vector<char>> refSets;
      for (const auto& f : formulas) refSets.push_back(ref.evaluate(f));
      const double r = w1.ms();
      refMs = refMs < 0 ? r : std::min(refMs, r);

      bench::Stopwatch w2;
      ctl::Checker fast(prod.automaton);
      std::vector<ctl::SatSet> fastSets;
      for (const auto& f : formulas) fastSets.push_back(fast.evaluate(f));
      const double g = w2.ms();
      fastMs = fastMs < 0 ? g : std::min(fastMs, g);

      for (std::size_t fi = 0; fi < formulas.size(); ++fi) {
        for (automata::StateId s = 0; s < prod.automaton.stateCount(); ++s) {
          if (fastSets[fi].test(s) != static_cast<bool>(refSets[fi][s])) {
            std::fprintf(stderr,
                         "MISMATCH: %s size %zu formula '%s' state %u\n",
                         w.name, w.sizes[si], w.formulaTexts[fi].c_str(), s);
            match = false;
          }
        }
      }
    }
    allMatch = allMatch && match;
    const double speedup = fastMs > 0 ? refMs / fastMs : 0;
    table.row({std::to_string(w.sizes[si]),
               std::to_string(prod.automaton.stateCount()),
               std::to_string(prod.automaton.transitionCount()),
               util::fmt(refMs, 2), util::fmt(fastMs, 2),
               util::fmt(speedup, 1) + "x", match ? "yes" : "NO"});
    if (si) json += ',';
    json += "{\"size\":" + std::to_string(w.sizes[si]) +
            ",\"productStates\":" +
            std::to_string(prod.automaton.stateCount()) +
            ",\"productTransitions\":" +
            std::to_string(prod.automaton.transitionCount()) +
            ",\"referenceMs\":" + util::fmt(refMs, 3) +
            ",\"worklistMs\":" + util::fmt(fastMs, 3) +
            ",\"speedup\":" + util::fmt(speedup, 2) +
            ",\"verdictsMatch\":" + (match ? "true" : "false") + "}";
  }
  json += "]}";
  std::printf("-- workload: %s\n%s\n", w.name, table.str().c_str());
  return allMatch;
}

/// Reference-vs-worklist speedup harness. Two workloads: shallow random
/// products (breadth) and deep ring products (diameter — where the naive
/// sweeps degenerate to O(S²)). Returns false on any disagreement.
bool runSpeedupHarness(bool smoke) {
  bench::printHeader(
      "E4b: worklist checker vs naive reference",
      "Same products, same CCTL formula set; every satisfaction set is "
      "cross-checked state-by-state. The worklist engine replaces the "
      "reference's repeated whole-state-space sweeps with O(S+E) fixpoints "
      "over a predecessor index; the gap scales with the product diameter.");

  const Workload random{
      "random-product",
      smoke ? std::vector<std::size_t>{8, 16}
            : std::vector<std::size_t>{16, 64, 256},
      &buildRandom,
      {"AG !(lg.lg_q1 && ctxa.lg_q2)",
       "AG (lg.lg_q1 -> AF[1,8] ctxa.lg_q0)",
       "A[!lg.lg_q2 U (lg.lg_q2 || deadlock)] && EG !deadlock",
       "EF[2,12] (aux.aux_q1 && EX lg.lg_q0)"}};
  const Workload deep{
      "deep-ring",
      smoke ? std::vector<std::size_t>{256, 1024}
            : std::vector<std::size_t>{1024, 4096, 16384},
      &makeDeepProduct,
      {"EF ring.rq0", "AF mir.rq1", "A[!ring.rq3 U ring.rq0]",
       "AG EF ring.rq0"}};

  std::string json = "{\"bench\":\"modelcheck\",\"unit\":\"ms\",\"smoke\":";
  json += smoke ? "true" : "false";
  json += ",\"workloads\":[";
  bool allMatch = runWorkload(random, json);
  json += ',';
  allMatch = runWorkload(deep, json) && allMatch;
  json += "]}\n";
  bench::writeBenchJson("BENCH_modelcheck.json", json);
  return allMatch;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = mui::bench::smokeMode();
  const bool ok = runSpeedupHarness(smoke);
  if (!ok) return 1;      // correctness gate — timing never fails the run
  if (smoke) return 0;    // CI: skip the micro benches
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
