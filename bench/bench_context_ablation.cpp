// E3 — the paper's headline claim ablated: "our approach considers
// especially the collaboration (context)... the whole behavior of the
// legacy system is not required but only the relevant part for the
// collaboration" (Sec. 6 conclusion). We sweep how much of the component
// the context exercises and report the fraction of the hidden behavior the
// loop had to learn before reaching its verdict.

#include <cstdio>

#include "bench_util.hpp"
#include "testing/legacy.hpp"

int main() {
  using namespace mui;
  bench::printHeader(
      "E3: context restriction vs fraction of the component learned",
      "Scenario: hidden component with 24 states; the context exercises a "
      "keep% sub-behavior. The leaner the context, the smaller the learned "
      "model — the integration is decided without reverse engineering the "
      "rest (the over-approximation needs no equivalence check).");

  util::TextTable table({"context keep%", "ctx states", "verdicts",
                         "learned/hidden states", "learned/hidden trans",
                         "test periods", "iterations"});
  constexpr std::size_t kHiddenStates = 24;
  for (const std::uint64_t keep : {10u, 25u, 50u, 75u, 100u}) {
    std::size_t ctxStates = 0, lStates = 0, hStates = 0, lTrans = 0,
                hTrans = 0, iters = 0;
    std::uint64_t periods = 0;
    std::string verdicts;
    constexpr int kSeeds = 5;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      bench::Scenario sc(kHiddenStates, 1000 + static_cast<std::uint64_t>(seed),
                         keep);
      testing::AutomatonLegacy legacy(sc.hidden);
      const auto res =
          synthesis::IntegrationVerifier(sc.context, legacy, {}).run();
      ctxStates += sc.context.stateCount();
      lStates += res.learnedModels[0].base().stateCount();
      hStates += sc.hidden.stateCount();
      lTrans += res.learnedModels[0].base().transitionCount();
      hTrans += sc.hidden.transitionCount();
      periods += res.totalTestPeriods;
      iters += res.iterations;
      verdicts += res.verdict == synthesis::Verdict::ProvenCorrect ? 'P' : 'E';
    }
    table.row(
        {std::to_string(keep), util::fmt(ctxStates / double(kSeeds), 1),
         verdicts,
         util::fmt(100.0 * lStates / hStates, 1) + "%",
         util::fmt(100.0 * lTrans / hTrans, 1) + "%",
         util::fmt(periods / double(kSeeds), 1),
         util::fmt(iters / double(kSeeds), 1)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("verdict column: one letter per seed (P = proven, E = real "
              "error)\n");
  return 0;
}
