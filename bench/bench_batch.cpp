// E11 — batch-engine scaling (mui::engine): wall time of a fixed job
// campaign as the worker count grows, the effect of the content-hash
// result cache on campaigns with duplicate jobs, and deadline isolation
// (timed-out jobs never take down the batch).
//
// The job set is the watchdog scenario (models/watchdog.muml, embedded
// below so the bench binary stays self-contained) over several synthetic
// "revisions" of the device component: revisions differ in model text, so
// every (revision, device) pair is distinct cache-wise. On a single-core
// machine the thread sweep shows ~1x; the trajectory matters on the
// multi-core production target.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "engine/engine.hpp"
#include "engine/manifest.hpp"

namespace {

// models/watchdog.muml, trimmed to the pattern and the device revisions the
// campaign uses.
constexpr const char* kWatchdogModel = R"mm(
rtsc monitorRole {
  output ping;
  input pong;
  clock c;
  location idle invariant c <= 3;
  location waiting invariant c <= 2;
  location escalated;
  initial idle;
  idle -> waiting : emit ping reset c;
  waiting -> idle : trigger pong reset c;
  waiting -> escalated : guard c >= 2;
  escalated -> escalated : ;
}

rtsc deviceRole {
  input ping;
  output pong;
  clock d;
  location ready;
  location serving invariant d <= 0;
  initial ready;
  ready -> serving : trigger ping reset d;
  serving -> ready : emit pong;
}

pattern Watchdog {
  role monitor uses monitorRole;
  role device uses deviceRole invariant "AG (device.serving -> AF[1,1] device.ready)";
  connector direct;
  constraint "AG !monitor.escalated";
}

automaton deviceCompliant {
  input ping; output pong;
  initial ready;
  ready -> ready : ;
  ready -> serving : ping / ;
  serving -> ready : / pong;
}

automaton deviceSlow {
  input ping; output pong;
  initial ready;
  ready -> ready : ;
  ready -> busy1 : ping / ;
  busy1 -> busy2 : ;
  busy2 -> ready : / pong;
}

automaton deviceCrawl {
  input ping; output pong;
  initial ready;
  ready -> ready : ;
  ready -> busy1 : ping / ;
  busy1 -> busy2 : ;
  busy2 -> busy3 : ;
  busy3 -> ready : / pong;
}

automaton deviceMute {
  input ping; output pong;
  initial ready;
  ready -> ready : ;
  ready -> dead : ping / ;
  dead -> dead : ;
}

automaton deviceDeaf {
  input ping; output pong;
  initial ready;
  ready -> ready : ;
}
)mm";

const char* kDevices[] = {"deviceCompliant", "deviceSlow", "deviceCrawl",
                          "deviceMute", "deviceDeaf"};

/// `revisions` distinct model texts (a revision-tag comment changes the
/// content hash) x all five devices.
std::vector<mui::engine::Job> makeCampaign(mui::engine::TextCache& texts,
                                           std::size_t revisions) {
  std::vector<mui::engine::Job> jobs;
  for (std::size_t rev = 0; rev < revisions; ++rev) {
    const std::string path = "mem:watchdog-r" + std::to_string(rev);
    texts.prime(path, std::string(kWatchdogModel) + "\n# revision " +
                          std::to_string(rev) + "\n");
    for (const char* device : kDevices) {
      mui::engine::Job job;
      job.name = "r" + std::to_string(rev) + "/" + device;
      job.modelPath = path;
      job.pattern = "Watchdog";
      job.legacyRole = "device";
      job.hidden = device;
      jobs.push_back(std::move(job));
    }
  }
  return jobs;
}

std::string verdictSummary(const mui::engine::BatchReport& report) {
  using mui::engine::JobStatus;
  return std::to_string(report.count(JobStatus::Proven)) + "/" +
         std::to_string(report.count(JobStatus::RealError)) + "/" +
         std::to_string(report.count(JobStatus::Timeout)) + "/" +
         std::to_string(report.count(JobStatus::EngineError));
}

}  // namespace

int main() {
  using namespace mui;

  bench::printHeader(
      "E11: batch engine scaling, result cache, deadline isolation",
      "Campaign: 4 synthetic revisions x 5 device variants of the watchdog "
      "scenario (20 distinct jobs). The thread sweep reruns the identical "
      "campaign with fresh caches; speedup is against 1 thread on this "
      "machine (expect ~1x on a single core).");

  // -- thread scaling over distinct jobs -----------------------------------
  util::TextTable scaling({"threads", "jobs", "wall ms", "speedup",
                           "P/E/T/X verdicts", "cache hits"});
  double baselineMs = 0;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    engine::TextCache texts;
    const auto jobs = makeCampaign(texts, /*revisions=*/4);
    engine::BatchOptions options;
    options.threads = threads;
    const auto report = engine::runBatch(jobs, options, texts);
    if (threads == 1) baselineMs = report.wallMs;
    scaling.row({std::to_string(threads), std::to_string(jobs.size()),
                 util::fmt(report.wallMs, 1),
                 util::fmt(report.wallMs > 0 ? baselineMs / report.wallMs : 0,
                           2),
                 verdictSummary(report), std::to_string(report.cacheHits)});
  }
  std::printf("%s\n", scaling.str().c_str());

  // -- result-cache effect: same campaign size, only 5 distinct jobs -------
  util::TextTable cacheTable(
      {"campaign", "threads", "wall ms", "cache hits", "hit rate"});
  for (const bool duplicates : {false, true}) {
    engine::TextCache texts;
    auto jobs = makeCampaign(texts, 4);
    if (duplicates) {
      // Rewrite every job onto revision 0: 20 jobs, 5 distinct keys.
      for (auto& job : jobs) job.modelPath = "mem:watchdog-r0";
    }
    engine::BatchOptions options;
    options.threads = 1;  // sequential: every duplicate is a guaranteed hit
    const auto report = engine::runBatch(jobs, options, texts);
    cacheTable.row({duplicates ? "20 jobs, 5 distinct" : "20 distinct",
                    std::to_string(report.threads),
                    util::fmt(report.wallMs, 1),
                    std::to_string(report.cacheHits),
                    util::fmt(report.cacheHitRate() * 100, 0) + "%"});
  }
  std::printf("%s\n", cacheTable.str().c_str());

  // -- deadline isolation: a 1 ms default deadline over the whole campaign -
  {
    engine::TextCache texts;
    const auto jobs = makeCampaign(texts, 4);
    engine::BatchOptions options;
    options.threads = 4;
    options.defaultTimeoutMs = 1;
    const auto report = engine::runBatch(jobs, options, texts);
    std::printf(
        "deadline isolation: 1 ms default deadline -> %zu of %zu jobs timed "
        "out, %zu engine errors, batch completed in %s ms\n",
        report.count(engine::JobStatus::Timeout), report.results.size(),
        report.count(engine::JobStatus::EngineError),
        util::fmt(report.wallMs, 1).c_str());
  }
  return 0;
}
