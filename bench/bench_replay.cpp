// E5 — deterministic replay and the probe effect (paper Sec. 5): event
// volume per probe level on the target (the paper's motivation for
// minimizing probes), replay determinism validation, and the recording/
// replay overhead per executed period.

#include <cstdio>

#include "bench_util.hpp"
#include "muml/shuttle.hpp"
#include "testing/driver.hpp"
#include "testing/legacy_shuttle.hpp"
#include "testing/runtime.hpp"

int main() {
  using namespace mui;
  namespace sh = muml::shuttle;

  bench::printHeader(
      "E5: monitoring probe levels and deterministic replay",
      "The target build records only messages + periods (Listing 1.2); the "
      "replay build adds state and timing probes (Listing 1.3) without "
      "perturbing the execution — the driver cross-checks every replayed "
      "output against the recording.");

  automata::SignalTableRef signals = std::make_shared<automata::SignalTable>();
  automata::SignalTableRef props = std::make_shared<automata::SignalTable>();
  const auto front = sh::frontRoleAutomaton(signals, props);

  util::TextTable table({"periods", "replay-only events", "full events",
                         "events/period (target)", "events/period (replay)",
                         "run ms"});
  for (const std::uint64_t periods : {50u, 200u, 1000u, 5000u}) {
    testing::FirmwareShuttleLegacy fwA(signals, false);
    testing::PeriodicRuntime rtA(front, fwA, 99);
    testing::Recorder minimal(testing::ProbeLevel::ReplayOnly);
    bench::Stopwatch watch;
    const auto ranA = rtA.run(periods, minimal);
    const double ms = watch.ms();

    testing::FirmwareShuttleLegacy fwB(signals, false);
    testing::PeriodicRuntime rtB(front, fwB, 99);
    testing::Recorder full(testing::ProbeLevel::Full);
    const auto ranB = rtB.run(periods, full);

    table.row({std::to_string(ranA),
               std::to_string(minimal.events().size()),
               std::to_string(full.events().size()),
               util::fmt(minimal.events().size() / double(ranA), 2),
               util::fmt(full.events().size() / double(ranB), 2),
               util::fmt(ms, 2)});
  }
  std::printf("%s\n", table.str().c_str());

  // Replay determinism: execute a long counterexample-style test; phase 2
  // must reproduce phase 1 exactly (the driver throws otherwise).
  std::printf("replay determinism check: ");
  testing::FirmwareShuttleLegacy fw(signals, false);
  testing::CounterexampleTestDriver driver(fw, *signals);
  std::vector<automata::Interaction> steps;
  automata::Interaction propose;
  propose.out.set(signals->intern(sh::kConvoyProposal));
  automata::Interaction reject;
  reject.in.set(signals->intern(sh::kConvoyProposalRejected));
  for (int i = 0; i < 300; ++i) {
    steps.push_back({});
    steps.push_back(propose);
    steps.push_back(reject);
  }
  const auto outcome = driver.execute(steps);
  std::printf("%s (%zu steps, %llu periods driven, %zu replay events)\n",
              outcome.kind == testing::TestOutcome::Kind::Confirmed
                  ? "PASSED"
                  : "unexpected outcome",
              outcome.executedSteps,
              static_cast<unsigned long long>(driver.periodsDriven()),
              outcome.replayLog.events().size());
  return 0;
}
