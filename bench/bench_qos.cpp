// E9 — connector QoS ablation (extends the paper's modeling claim that
// connector statecharts "model channel delay and reliability, which are of
// crucial importance for real-time systems"): the RailCab integration is
// re-verified with an explicit channel automaton between the shuttles. The
// pattern constraint AG !(rearRole.convoy && frontRole.noConvoy) encodes a
// *synchronous* mode handover; any transit delay lets the front shuttle
// leave convoy mode while the breakConvoyAccepted message is still in
// flight — a real desynchronization the verifier must find.

#include <cstdio>

#include "automata/compose.hpp"
#include "automata/rename.hpp"
#include "bench_util.hpp"
#include "muml/channel.hpp"
#include "muml/shuttle.hpp"
#include "testing/legacy_shuttle.hpp"

namespace {

using namespace mui;
namespace sh = muml::shuttle;

/// Builds the context "front shuttle behind a radio link": the front role
/// rebound to channel endpoint names, composed with the channel automaton.
automata::Automaton channeledContext(const bench::Tables& t,
                                     std::uint32_t delay, bool lossy) {
  const auto front = sh::frontRoleAutomaton(t.signals, t.props);
  // Rear -> front messages arrive via *_d endpoints; front -> rear messages
  // leave via *_u endpoints.
  const auto frontR = automata::renameSignals(
      front, {
                 {sh::kConvoyProposal, "convoyProposal_d"},
                 {sh::kBreakConvoyProposal, "breakConvoyProposal_d"},
                 {sh::kConvoyProposalRejected, "convoyProposalRejected_u"},
                 {sh::kStartConvoy, "startConvoy_u"},
                 {sh::kBreakConvoyRejected, "breakConvoyRejected_u"},
                 {sh::kBreakConvoyAccepted, "breakConvoyAccepted_u"},
             });
  const auto channel = muml::makeChannel(
      t.signals, t.props,
      {"radio",
       {
           {sh::kConvoyProposal, "convoyProposal_d"},
           {sh::kBreakConvoyProposal, "breakConvoyProposal_d"},
           {"convoyProposalRejected_u", sh::kConvoyProposalRejected},
           {"startConvoy_u", sh::kStartConvoy},
           {"breakConvoyRejected_u", sh::kBreakConvoyRejected},
           {"breakConvoyAccepted_u", sh::kBreakConvoyAccepted},
       },
       delay,
       /*capacity=*/2,
       lossy});
  return automata::composeAll({&frontR, &channel}).automaton;
}

}  // namespace

int main() {
  bench::printHeader(
      "E9: integration verdict vs connector QoS (delay / loss)",
      "The shipped (correct) firmware integrates cleanly over the direct "
      "connector. Any transit delay breaks the synchronous mode handover "
      "the pattern constraint demands: the verifier finds the in-flight "
      "breakConvoyAccepted desynchronization as a real error.");

  util::TextTable table({"connector", "context states", "verdict",
                         "iterations", "test periods", "wall ms"});

  struct Config {
    const char* name;
    bool direct;
    std::uint32_t delay;
    bool lossy;
  };
  struct Full {
    Config cfg;
    bool minimizeContext;
  };
  const Full configs[] = {
      {{"direct (paper)", true, 0, false}, false},
      {{"channel delay 1", false, 1, false}, false},
      {{"channel delay 1 (min ctx)", false, 1, false}, true},
      {{"channel delay 2", false, 2, false}, false},
      {{"channel delay 1 lossy", false, 1, true}, false},
  };

  std::string desyncCex;
  for (const auto& [cfg, minimize] : configs) {
    bench::Tables t;
    const automata::Automaton context =
        cfg.direct ? sh::frontRoleAutomaton(t.signals, t.props)
                   : channeledContext(t, cfg.delay, cfg.lossy);
    testing::FirmwareShuttleLegacy firmware(t.signals,
                                            /*faultyRevision=*/false);
    synthesis::IntegrationConfig vcfg;
    vcfg.property = sh::kPatternConstraint;
    vcfg.minimizeContext = minimize;
    bench::Stopwatch watch;
    const auto res =
        synthesis::IntegrationVerifier(context, firmware, vcfg).run();
    table.row({cfg.name, std::to_string(context.stateCount()),
               bench::verdictName(res.verdict),
               std::to_string(res.iterations),
               std::to_string(res.totalTestPeriods),
               util::fmt(watch.ms(), 1)});
    if (!cfg.direct && !cfg.lossy && desyncCex.empty() &&
        !res.counterexampleText.empty()) {
      desyncCex = res.counterexampleText;
    }
  }
  std::printf("%s\n", table.str().c_str());
  if (!desyncCex.empty()) {
    std::printf("Desynchronization witness (delayed channel):\n%s\n",
                desyncCex.c_str());
  }
  return 0;
}
