// E2 — the paper's central comparison (Sec. 6): context-guided
// over-approximation learning (this paper) versus classic regular inference
// — Angluin's L* with a W-method equivalence oracle, and black-box checking
// (Peled et al.). The key structural differences the table quantifies:
//
//   * our loop never runs an equivalence query (exponential W-suites);
//   * it tests only behavior the context can reach (fewer periods when the
//     context is restrictive);
//   * its "proven" verdict is unconditional (Lemma 5), while the baselines'
//     holds only up to the assumed state bound.

#include <cstdio>

#include "bench_util.hpp"
#include "learnlib/bbc.hpp"
#include "testing/legacy.hpp"

int main() {
  using namespace mui;
  bench::printHeader(
      "E2: chaotic-closure loop vs L*-based black-box checking",
      "Scenario: random hidden components (10 states); the context "
      "exercises keep% of them; deadlock-freedom requirement; 5 seeds per "
      "row. periods = component periods driven (test effort). The baseline "
      "needs W-method conformance suites (suite column); its verdict is "
      "only valid up to the assumed state bound.");

  util::TextTable table({"keep%", "approach", "verdicts", "periods",
                         "iters/rounds", "eq-suites", "model states"});
  constexpr std::size_t kHidden = 10;
  constexpr int kSeeds = 5;
  for (const std::uint64_t keep : {20u, 50u, 100u}) {
    std::uint64_t oursPeriods = 0, bbcPeriods = 0, rsPeriods = 0;
    std::size_t oursIters = 0, bbcRounds = 0, bbcSuites = 0;
    std::size_t rsRounds = 0, rsSuites = 0;
    std::size_t oursStates = 0, bbcStates = 0, rsStates = 0;
    std::string oursVerdicts, bbcVerdicts, rsVerdicts;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      bench::Scenario sc(kHidden, 40 + static_cast<std::uint64_t>(seed), keep);

      testing::AutomatonLegacy oursLegacy(sc.hidden);
      const auto ours =
          synthesis::IntegrationVerifier(sc.context, oursLegacy, {}).run();
      oursPeriods += ours.totalTestPeriods;
      oursIters += ours.iterations;
      oursStates += ours.learnedModels[0].base().stateCount();
      oursVerdicts +=
          ours.verdict == synthesis::Verdict::ProvenCorrect ? 'P' : 'E';

      testing::AutomatonLegacy bbcLegacy(sc.hidden);
      learnlib::BbcConfig cfg;
      cfg.stateBound = kHidden + 1;  // generous exact bound (+ reject sink)
      const auto bbc =
          learnlib::BlackBoxChecker(sc.context, bbcLegacy, cfg).run();
      bbcPeriods += bbc.periods;
      bbcRounds += bbc.rounds;
      bbcSuites += bbc.equivalenceSuites;
      bbcStates += bbc.hypothesisStates;
      bbcVerdicts +=
          bbc.verdict == learnlib::BbcVerdict::ProvenCorrectUpToBound
              ? 'P'
              : bbc.verdict == learnlib::BbcVerdict::RealError ? 'E' : '?';

      testing::AutomatonLegacy rsLegacy(sc.hidden);
      learnlib::BbcConfig rsCfg = cfg;
      rsCfg.ceStrategy = learnlib::CeStrategy::RivestSchapire;
      const auto rs =
          learnlib::BlackBoxChecker(sc.context, rsLegacy, rsCfg).run();
      rsPeriods += rs.periods;
      rsRounds += rs.rounds;
      rsSuites += rs.equivalenceSuites;
      rsStates += rs.hypothesisStates;
      rsVerdicts +=
          rs.verdict == learnlib::BbcVerdict::ProvenCorrectUpToBound
              ? 'P'
              : rs.verdict == learnlib::BbcVerdict::RealError ? 'E' : '?';
    }
    const auto avg = [&](auto v) {
      return util::fmt(static_cast<double>(v) / kSeeds, 1);
    };
    table.row({std::to_string(keep), "closure-loop (ours)", oursVerdicts,
               avg(oursPeriods), avg(oursIters), "0", avg(oursStates)});
    table.row({std::to_string(keep), "black-box checking", bbcVerdicts,
               avg(bbcPeriods), avg(bbcRounds), avg(bbcSuites),
               avg(bbcStates)});
    table.row({std::to_string(keep), "bbc + Rivest-Schapire", rsVerdicts,
               avg(rsPeriods), avg(rsRounds), avg(rsSuites), avg(rsStates)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Expected shape: the closure loop needs no equivalence suites and "
      "fewer periods, with the gap widest for restrictive contexts "
      "(keep%% low); the baselines must learn toward the whole component "
      "before their passing verdict means anything.\n");
  return 0;
}
