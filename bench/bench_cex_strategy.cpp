// E7 — counterexample strategies (paper Sec. 7 future work): "the interplay
// between the formal verification and the test could be improved when a
// number of counterexamples instead only a single one could be derived from
// the model checker. Another improvement seems possible when specific
// strategies ... (e.g., the shortest one) are considered." We sweep both
// knobs on the RailCab scenario and on random systems.

#include <cstdio>

#include "bench_util.hpp"
#include "muml/shuttle.hpp"
#include "testing/legacy.hpp"
#include "testing/legacy_shuttle.hpp"

namespace {

using namespace mui;

struct Variant {
  const char* name;
  ctl::CexSearch search;
  std::size_t batch;
};

constexpr Variant kVariants[] = {
    {"shortest, 1 cex", ctl::CexSearch::Shortest, 1},
    {"shortest, 4 cex", ctl::CexSearch::Shortest, 4},
    {"depth-first, 1 cex", ctl::CexSearch::DepthFirst, 1},
    {"depth-first, 4 cex", ctl::CexSearch::DepthFirst, 4},
};

}  // namespace

int main() {
  bench::printHeader(
      "E7: counterexample search strategy and batching",
      "Both knobs change effort, not verdicts. Shorter counterexamples mean "
      "shorter tests; batching amortizes the model-checking rounds against "
      "more learning per round.");

  // ---- RailCab scenario. ----------------------------------------------------
  {
    util::TextTable table({"variant", "scenario", "verdict", "iterations",
                           "test periods", "avg cex len", "wall ms"});
    for (const bool faulty : {false, true}) {
      for (const auto& v : kVariants) {
        automata::SignalTableRef signals =
            std::make_shared<automata::SignalTable>();
        automata::SignalTableRef props =
            std::make_shared<automata::SignalTable>();
        const auto front = muml::shuttle::frontRoleAutomaton(signals, props);
        testing::FirmwareShuttleLegacy legacy(signals, faulty);
        synthesis::IntegrationConfig cfg;
        cfg.property = muml::shuttle::kPatternConstraint;
        cfg.search = v.search;
        cfg.counterexamplesPerCheck = v.batch;
        bench::Stopwatch watch;
        const auto res =
            synthesis::IntegrationVerifier(front, legacy, cfg).run();
        const double ms = watch.ms();
        std::size_t cexLenSum = 0, cexCount = 0;
        for (const auto& rec : res.journal) {
          if (!rec.checkPassed) {
            cexLenSum += rec.cexLength;
            ++cexCount;
          }
        }
        table.row({v.name, faulty ? "faulty fw" : "correct fw",
                   bench::verdictName(res.verdict),
                   std::to_string(res.iterations),
                   std::to_string(res.totalTestPeriods),
                   util::fmt(cexCount ? double(cexLenSum) / cexCount : 0, 1),
                   util::fmt(ms, 1)});
      }
    }
    std::printf("%s\n", table.str().c_str());
  }

  // ---- Random systems (averaged). -------------------------------------------
  {
    util::TextTable table({"variant", "verdicts", "avg iterations",
                           "avg test periods", "avg wall ms"});
    constexpr int kSeeds = 5;
    for (const auto& v : kVariants) {
      std::size_t iters = 0;
      std::uint64_t periods = 0;
      double ms = 0;
      std::string verdicts;
      for (int seed = 1; seed <= kSeeds; ++seed) {
        bench::Scenario sc(12, 70 + static_cast<std::uint64_t>(seed), 60);
        testing::AutomatonLegacy legacy(sc.hidden);
        synthesis::IntegrationConfig cfg;
        cfg.search = v.search;
        cfg.counterexamplesPerCheck = v.batch;
        bench::Stopwatch watch;
        const auto res =
            synthesis::IntegrationVerifier(sc.context, legacy, cfg).run();
        ms += watch.ms();
        iters += res.iterations;
        periods += res.totalTestPeriods;
        verdicts +=
            res.verdict == synthesis::Verdict::ProvenCorrect ? 'P' : 'E';
      }
      table.row({v.name, verdicts, util::fmt(iters / double(kSeeds), 1),
                 util::fmt(periods / double(kSeeds), 1),
                 util::fmt(ms / kSeeds, 1)});
    }
    std::printf("%s\n", table.str().c_str());
  }
  return 0;
}
