// Quickstart: verify the integration of a black-box legacy component into a
// modeled context, end to end.
//
//   1. Describe the context in the .muml model format (and, for this demo,
//      also the hidden legacy behavior — the verifier never looks inside).
//   2. Put the legacy component behind the LegacyComponent interface (in a
//      real integration this adapter drives the actual software; here it
//      executes the hidden automaton).
//   3. Run the IntegrationVerifier: it alternates model checking of the
//      chaotic-closure abstraction with counterexample-guided tests on the
//      component until the integration is proven correct or a real error is
//      found — without ever learning more of the component than the context
//      can reach.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "muml/loader.hpp"
#include "synthesis/verifier.hpp"
#include "testing/legacy.hpp"

namespace {

// A two-party request/response protocol. The context (client) issues
// requests and expects an answer; the hidden legacy server alternates
// between denying and granting.
constexpr const char* kModel = R"mm(
  automaton client {
    input grant deny;
    output request;
    initial idle;
    idle -> idle : ;
    idle -> waiting : / request;
    waiting -> happy : grant / ;
    waiting -> idle : deny / ;
    happy -> happy : ;
  }

  automaton server {
    input request;
    output grant deny;
    initial even;
    even -> even : ;
    even -> busyEven : request / ;
    busyEven -> odd : / deny;
    odd -> odd : ;
    odd -> busyOdd : request / ;
    busyOdd -> even : / grant;
  }
)mm";

}  // namespace

int main() {
  using namespace mui;

  // 1. Load the models.
  const muml::Model model = muml::loadModel(kModel);
  const automata::Automaton& client = model.automata.at("client");

  // 2. The black box.
  testing::AutomatonLegacy legacy(model.automata.at("server"));

  // 3. Verify the integration: no deadlocks, and a granted client stays
  //    happy forever.
  synthesis::IntegrationConfig cfg;
  cfg.property = "AG (client.happy -> AG client.happy)";
  synthesis::IntegrationVerifier verifier(client, legacy, cfg);
  const auto result = verifier.run();

  std::printf("verdict      : %s\n",
              result.verdict == synthesis::Verdict::ProvenCorrect
                  ? "PROVEN CORRECT"
                  : result.verdict == synthesis::Verdict::RealError
                        ? "REAL INTEGRATION ERROR"
                        : "inconclusive");
  std::printf("explanation  : %s\n", result.explanation.c_str());
  std::printf("iterations   : %zu\n", result.iterations);
  std::printf("test periods : %llu\n",
              static_cast<unsigned long long>(result.totalTestPeriods));
  const auto& learned = result.learnedModels[0].base();
  std::printf("learned model: %zu states, %zu transitions, %zu refusals\n",
              learned.stateCount(), learned.transitionCount(),
              result.learnedModels[0].forbiddenCount());
  std::printf("\nLearned behavioral model of the server:\n%s\n",
              learned.toText().c_str());
  if (!result.counterexampleText.empty()) {
    std::printf("Counterexample:\n%s\n", result.counterexampleText.c_str());
  }
  return result.verdict == synthesis::Verdict::ProvenCorrect ? 0 : 1;
}
