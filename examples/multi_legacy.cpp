// Multiple legacy components (paper Sec. 7, future work): two black boxes
// embedded in one context, learned in parallel — each gets its own
// incomplete model and chaotic closure — compared against the composite
// strategy that learns one joint model of both.
//
// Build & run:  ./build/examples/multi_legacy

#include <cstdio>

#include "automata/compose.hpp"
#include "automata/random.hpp"
#include "synthesis/verifier.hpp"
#include "testing/composite.hpp"
#include "testing/legacy.hpp"

int main() {
  using namespace mui;

  automata::SignalTableRef signals = std::make_shared<automata::SignalTable>();
  automata::SignalTableRef props = std::make_shared<automata::SignalTable>();

  // Two independent legacy components with disjoint interfaces.
  automata::RandomSpec specA;
  specA.states = 5;
  specA.inputs = 1;
  specA.outputs = 1;
  specA.seed = 12;
  specA.name = "sensorCtl";
  automata::RandomSpec specB = specA;
  specB.seed = 21;
  specB.name = "driveCtl";
  const auto hiddenA = automata::randomAutomaton(specA, signals, props);
  const auto hiddenB = automata::randomAutomaton(specB, signals, props);

  // The context exercises both: the composition of their mirrored twins.
  const auto mirrorA = automata::mirrored(hiddenA, "busA");
  const auto mirrorB = automata::mirrored(hiddenB, "busB");
  const auto context = automata::composeAll({&mirrorA, &mirrorB}).automaton;

  // ---- Strategy 1: parallel learning (one model per component). -----------
  testing::AutomatonLegacy legacyA(hiddenA);
  testing::AutomatonLegacy legacyB(hiddenB);
  synthesis::IntegrationVerifier parallel(context, {&legacyA, &legacyB}, {});
  const auto par = parallel.run();

  // ---- Strategy 2: composite learning (one joint model). ------------------
  std::vector<std::unique_ptr<testing::LegacyComponent>> parts;
  parts.push_back(std::make_unique<testing::AutomatonLegacy>(hiddenA));
  parts.push_back(std::make_unique<testing::AutomatonLegacy>(hiddenB));
  testing::CompositeLegacy composite(std::move(parts), "jointCtl");
  synthesis::IntegrationVerifier joint(context, composite, {});
  const auto cmp = joint.run();

  const auto verdictName = [](synthesis::Verdict v) {
    switch (v) {
      case synthesis::Verdict::ProvenCorrect:
        return "PROVEN CORRECT";
      case synthesis::Verdict::RealError:
        return "REAL ERROR";
      default:
        return "inconclusive";
    }
  };

  std::printf("strategy    verdict          iters  facts  periods  models\n");
  std::printf("parallel    %-15s  %5zu  %5zu  %7llu  %zu+%zu states\n",
              verdictName(par.verdict), par.iterations, par.totalLearnedFacts,
              static_cast<unsigned long long>(par.totalTestPeriods),
              par.learnedModels[0].base().stateCount(),
              par.learnedModels[1].base().stateCount());
  std::printf("composite   %-15s  %5zu  %5zu  %7llu  %zu joint states\n",
              verdictName(cmp.verdict), cmp.iterations, cmp.totalLearnedFacts,
              static_cast<unsigned long long>(cmp.totalTestPeriods),
              cmp.learnedModels[0].base().stateCount());

  std::printf("\nVerdicts agree: %s\n",
              par.verdict == cmp.verdict ? "yes" : "NO (bug!)");
  std::printf("\nParallel learning keeps the per-component models small "
              "(%zu and %zu states vs up to %zu joint states), as the paper "
              "anticipates for restrictive contexts.\n",
              par.learnedModels[0].base().stateCount(),
              par.learnedModels[1].base().stateCount(),
              cmp.learnedModels[0].base().stateCount());
  return par.verdict == cmp.verdict ? 0 : 1;
}
