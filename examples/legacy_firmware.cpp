// Integrating real "legacy code": the hand-written shuttle controller
// firmware (switch-based C-style code, no model) is first exercised in its
// environment by the periodic runtime — producing the minimal Listing-1.2
// recording the paper advocates for target systems — and then passed through
// the full verification/testing/learning loop.
//
// Build & run:  ./build/examples/legacy_firmware

#include <cstdio>

#include "muml/shuttle.hpp"
#include "synthesis/report.hpp"
#include "synthesis/test_suite.hpp"
#include "synthesis/verifier.hpp"
#include "testing/legacy_shuttle.hpp"
#include "testing/runtime.hpp"

int main() {
  using namespace mui;
  namespace sh = muml::shuttle;

  automata::SignalTableRef signals = std::make_shared<automata::SignalTable>();
  automata::SignalTableRef props = std::make_shared<automata::SignalTable>();
  const automata::Automaton front = sh::frontRoleAutomaton(signals, props);

  // ---- Phase A: run the firmware "in the field" with minimal probes. ------
  std::printf("== Executing the firmware against the front shuttle "
              "(30 periods, replay-only probes) ==\n\n");
  testing::FirmwareShuttleLegacy firmware(signals, /*faultyRevision=*/false);
  testing::PeriodicRuntime runtime(front, firmware, /*seed=*/2024);
  testing::Recorder targetLog(testing::ProbeLevel::ReplayOnly);
  const auto periods = runtime.run(30, targetLog);
  std::printf("executed %llu periods; recorded %zu replay events "
              "(Listing 1.2 style):\n\n%s\n",
              static_cast<unsigned long long>(periods),
              targetLog.events().size(), targetLog.render().c_str());

  // ---- Phase B: the integration loop on the same firmware. ----------------
  std::printf("== Verifying the integration ==\n\n");
  firmware.reset();
  synthesis::IntegrationConfig cfg;
  cfg.property = sh::kPatternConstraint;
  cfg.recordTests = true;
  synthesis::IntegrationVerifier verifier(front, firmware, cfg);
  const auto result = verifier.run();

  std::printf("%s", synthesis::renderSummary(result).c_str());
  std::printf("\nper-iteration journal:\n%s",
              synthesis::renderJournal(result).c_str());

  // ---- Phase C: the generated component tests as a regression oracle. -----
  const auto& suite = result.recordedTests[0];
  std::printf("\n== Generated component test suite (%zu tests) ==\n\n%s",
              suite.size(),
              synthesis::renderSuite(suite, *signals).c_str());

  testing::FirmwareShuttleLegacy next(signals, /*faultyRevision=*/false);
  const auto pass = synthesis::runSuite(suite, next, *signals);
  std::printf("replaying the suite on the same revision : %zu/%zu passed\n",
              pass.passed, suite.size());
  testing::FirmwareShuttleLegacy regressed(signals, /*faultyRevision=*/true);
  const auto fail = synthesis::runSuite(suite, regressed, *signals);
  std::printf("replaying the suite on the old revision  : %zu/%zu passed",
              fail.passed, suite.size());
  if (!fail.failures.empty()) {
    std::printf("  (first failure: %s)", fail.failures[0].c_str());
  }
  std::printf("\n");
  return result.verdict == synthesis::Verdict::ProvenCorrect ? 0 : 1;
}
