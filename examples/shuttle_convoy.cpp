// The RailCab shuttle scenario — the paper's running example, regenerating
// its figures and listings:
//
//   Fig. 1   the DistanceCoordination pattern (printed + verified)
//   Fig. 3   the chaotic automaton (DOT)
//   Fig. 4   the trivial initial model and its chaotic closure (DOT)
//   Fig. 5   the known context behavior (frontRole, DOT)
//   L. 1.1   the first counterexample of the verification step
//   L. 1.2   the minimal (replay-only) target recording
//   L. 1.3   the fully instrumented deterministic replay
//   Fig. 6   the synthesized behavior conflicting with the environment
//   L. 1.4   the conflict counterexample within the synthesized part
//   L. 1.5   a successful learning step (correct firmware)
//   Fig. 7   the correct synthesized behavior w.r.t. the context
//
// Build & run:  ./build/examples/shuttle_convoy

#include <cstdio>

#include "automata/chaos.hpp"
#include "muml/shuttle.hpp"
#include "muml/verify.hpp"
#include "synthesis/initial.hpp"
#include "synthesis/verifier.hpp"
#include "testing/legacy.hpp"
#include "testing/legacy_shuttle.hpp"

namespace {

namespace sh = mui::muml::shuttle;
using namespace mui;

void banner(const char* title) {
  std::printf("\n==== %s "
              "=====================================================\n\n",
              title);
}

synthesis::IntegrationResult runScenario(const char* title,
                                         testing::LegacyComponent& legacy,
                                         const automata::Automaton& front) {
  banner(title);
  synthesis::IntegrationConfig cfg;
  cfg.property = sh::kPatternConstraint;
  cfg.keepTraces = true;
  synthesis::IntegrationVerifier verifier(front, legacy, cfg);
  const auto result = verifier.run();

  // Show the first and the richest counterexample with their monitor logs
  // (Listings 1.1-1.3).
  const synthesis::IterationRecord* first = nullptr;
  const synthesis::IterationRecord* richest = nullptr;
  for (const auto& rec : result.journal) {
    if (rec.cexText.empty()) continue;
    if (!first) first = &rec;
    if (!richest || rec.cexLength > richest->cexLength) richest = &rec;
  }
  if (first) {
    std::printf("Counterexample of verification round %zu "
                "(Listing 1.1 style):\n%s\n",
                first->iteration, first->cexText.c_str());
    std::printf("Monitoring (Listings 1.2/1.3 style):\n%s\n",
                first->monitorText.c_str());
  }
  if (richest && richest != first) {
    std::printf("Longest counterexample, round %zu (Listing 1.1 style):\n"
                "%s\n",
                richest->iteration, richest->cexText.c_str());
    std::printf("Monitoring:\n%s\n", richest->monitorText.c_str());
  }

  std::printf("verdict     : %s\n",
              result.verdict == synthesis::Verdict::ProvenCorrect
                  ? "PROVEN CORRECT (Lemma 5)"
                  : result.verdict == synthesis::Verdict::RealError
                        ? "REAL INTEGRATION ERROR (Lemma 6)"
                        : "inconclusive");
  std::printf("explanation : %s\n", result.explanation.c_str());
  std::printf("iterations  : %zu, test periods: %llu, learned facts: %zu\n",
              result.iterations,
              static_cast<unsigned long long>(result.totalTestPeriods),
              result.totalLearnedFacts);
  if (!result.counterexampleText.empty()) {
    std::printf("\nFinal counterexample (Listing 1.4 style):\n%s\n",
                result.counterexampleText.c_str());
  }
  std::printf("\nSynthesized behavioral model (Fig. 6/7):\n%s\n",
              result.learnedModels[0].base().toText().c_str());
  return result;
}

}  // namespace

int main() {
  // ---- Fig. 1: the DistanceCoordination pattern. ---------------------------
  banner("DistanceCoordination pattern (Fig. 1)");
  const auto pattern = sh::distanceCoordinationPattern();
  std::printf("pattern    : %s\n", pattern.name.c_str());
  std::printf("constraint : %s\n", pattern.constraint.c_str());
  for (const auto& role : pattern.roles) {
    std::printf("role %-10s invariant: %s\n", role.name.c_str(),
                role.invariant.c_str());
  }
  {
    automata::SignalTableRef signals =
        std::make_shared<automata::SignalTable>();
    automata::SignalTableRef props = std::make_shared<automata::SignalTable>();
    const auto pv = muml::verifyPattern(pattern, signals, props);
    std::printf("\npattern verification: constraint %s, deadlock-free %s, "
                "role invariants %s (product: %zu states)\n",
                pv.constraintHolds ? "OK" : "VIOLATED",
                pv.deadlockFree ? "OK" : "VIOLATED",
                pv.ok() ? "OK" : "VIOLATED",
                pv.composed.automaton.stateCount());
  }

  // Shared tables for the integration scenarios.
  automata::SignalTableRef signals = std::make_shared<automata::SignalTable>();
  automata::SignalTableRef props = std::make_shared<automata::SignalTable>();
  const automata::Automaton front = sh::frontRoleAutomaton(signals, props);

  // ---- Fig. 5: the context. ------------------------------------------------
  banner("Known context behavior: frontRole (Fig. 5, DOT)");
  std::printf("%s", front.toDot().c_str());

  // ---- Fig. 3 / Fig. 4: chaos and the initial closure. ----------------------
  banner("Chaotic automaton over the rear interface (Fig. 3, DOT)");
  testing::FirmwareShuttleLegacy probe(signals, false);
  const auto alphabet = automata::makeAlphabet(
      probe.inputs(), probe.outputs(),
      automata::InteractionMode::AtMostOneSignal);
  std::printf("%s", automata::chaoticAutomaton(signals, props, probe.inputs(),
                                               probe.outputs(), alphabet)
                        .toDot()
                        .c_str());

  banner("Initial model and its chaotic closure (Fig. 4, DOT)");
  const auto m0 = synthesis::initialModel(probe, signals, props);
  std::printf("Trivial initial model (Fig. 4a):\n%s\n",
              m0.base().toText().c_str());
  std::printf("Chaotic closure (Fig. 4b):\n%s",
              automata::chaoticClosure(m0, alphabet).automaton.toDot().c_str());

  // ---- The faulty firmware: fast conflict detection. ------------------------
  testing::FirmwareShuttleLegacy faulty(signals, /*faultyRevision=*/true);
  const auto bad = runScenario(
      "Integrating the FAULTY legacy firmware (Fig. 6, Listings 1.1-1.4)",
      faulty, front);

  // ---- The shipped firmware: proven correct. --------------------------------
  testing::FirmwareShuttleLegacy correct(signals, /*faultyRevision=*/false);
  const auto good = runScenario(
      "Integrating the CORRECT legacy firmware (Fig. 7, Listing 1.5)", correct,
      front);

  return (bad.verdict == synthesis::Verdict::RealError &&
          good.verdict == synthesis::Verdict::ProvenCorrect)
             ? 0
             : 1;
}
