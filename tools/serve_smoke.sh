#!/usr/bin/env bash
# End-to-end daemon lifecycle smoke test (also run as the CI daemon-smoke
# job): start `mui serve` with a durable cache, submit the example campaign
# manifest, restart the daemon, submit the same manifest again, and assert
# that the second run is answered almost entirely from the replayed cache
# (>= 90% hits — everything except the uncacheable timeout job) using the
# daemon's own /metrics endpoint. Both daemons must drain and exit 0 on
# SIGTERM. A third round demonstrates the observability path end to end:
# a traced submit produces one merged Chrome trace with the job ULID in
# both process rings, /jobs reports in-flight phases, and the daemon
# journal passes (then, synthetically regressed, trips) the
# `mui stats --baseline` trend gate.
#
# usage: serve_smoke.sh <mui-binary> <manifest> <work-dir>
set -euo pipefail

MUI=$1
MANIFEST=$2
WORK=$3

rm -rf "$WORK"
mkdir -p "$WORK"
CACHE="$WORK/cache.jsonl"
DAEMON_PID=""
PORT=""

fail() {
  echo "serve_smoke: FAIL: $*" >&2
  for log in "$WORK"/serve-*.log; do
    [ -f "$log" ] && { echo "--- $log ---" >&2; cat "$log" >&2; }
  done
  [ -n "$DAEMON_PID" ] && kill -KILL "$DAEMON_PID" 2>/dev/null
  exit 1
}

start_daemon() { # $1: label, $2...: extra serve flags
  local label=$1
  shift
  rm -f "$WORK/port"
  "$MUI" serve --port 0 --port-file "$WORK/port" --cache "$CACHE" \
      --threads 4 --queue-limit 64 "$@" >"$WORK/serve-$label.log" 2>&1 &
  DAEMON_PID=$!
  for _ in $(seq 1 150); do
    [ -s "$WORK/port" ] && break
    kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon $label died on startup"
    sleep 0.1
  done
  [ -s "$WORK/port" ] || fail "daemon $label never wrote its port file"
  PORT=$(cat "$WORK/port")
}

stop_daemon() { # $1: label
  kill -TERM "$DAEMON_PID"
  local rc=0
  wait "$DAEMON_PID" || rc=$?
  DAEMON_PID=""
  [ "$rc" -eq 0 ] || fail "daemon $1 exited $rc after SIGTERM (want 0)"
  grep -q "drained" "$WORK/serve-$1.log" || fail "daemon $1 did not report a drain"
}

http_get() { # $1: path, $2: output file
  exec 3<>"/dev/tcp/127.0.0.1/$PORT" || fail "cannot connect for GET $1"
  printf 'GET %s HTTP/1.0\r\nHost: localhost\r\n\r\n' "$1" >&3
  cat <&3 >"$2"
  exec 3<&- 3>&-
}

submit() { # $1: label
  local rc=0
  "$MUI" submit "$MANIFEST" --port "$PORT" >"$WORK/submit-$1.log" 2>&1 || rc=$?
  # The campaign deliberately contains real-error and timeout jobs, so a
  # healthy run exits 1; 2 would mean a protocol or connection failure.
  [ "$rc" -eq 1 ] || fail "submit $1 exited $rc (want 1); log: $(cat "$WORK/submit-$1.log")"
  grep -q "real-error" "$WORK/submit-$1.log" || fail "submit $1 report lacks the expected real-error row"
}

metric() { # $1: metrics file, $2: metric name -> prints the value (0 if absent)
  awk -v name="$2" '$1 == name { print $2; found = 1 } END { if (!found) print 0 }' "$1"
}

# Round 1: cold cache.
start_daemon 1
http_get /healthz "$WORK/healthz.txt"
grep -q "200" "$WORK/healthz.txt" || fail "/healthz is not 200 on a fresh daemon"
submit 1
# The cold run must exercise the semantic pre-solve stage: the campaign's
# guaranteed-faulty jobs are decided statically (docs/LINT_RULES.md,
# "Verdict pre-solving") before the refinement loop ever spins up.
http_get /metrics "$WORK/metrics-1.txt"
PROVED=$(metric "$WORK/metrics-1.txt" mui_presolve_proved_total)
REFUTED=$(metric "$WORK/metrics-1.txt" mui_presolve_refuted_total)
SKIPPED=$(metric "$WORK/metrics-1.txt" mui_presolve_skipped_total)
[ $((PROVED + REFUTED)) -ge 1 ] || \
    fail "cold run pre-solved nothing: proved=$PROVED refuted=$REFUTED skipped=$SKIPPED"
stop_daemon 1
[ -s "$CACHE" ] || fail "cache log $CACHE is empty after the first run"

# Round 2: a NEW daemon process replays the cache log; the same manifest
# must now be answered from cache for every cacheable job.
start_daemon 2
submit 2
http_get /metrics "$WORK/metrics.txt"
http_get /stats "$WORK/stats.txt"
grep -q '"type":"stats"' "$WORK/stats.txt" || fail "/stats did not return a stats object"

HITS=$(metric "$WORK/metrics.txt" mui_engine_cache_hits_total)
MISSES=$(metric "$WORK/metrics.txt" mui_engine_cache_misses_total)
TOTAL=$((HITS + MISSES))
[ "$TOTAL" -gt 0 ] || fail "daemon 2 reports no cache lookups at all"
# hits/total >= 0.9, in integers.
[ $((HITS * 10)) -ge $((TOTAL * 9)) ] || \
    fail "second run hit rate too low: $HITS/$TOTAL (want >= 90%)"
grep -q "mui_serve_jobs_total" "$WORK/metrics.txt" || fail "/metrics lacks serve counters"
stop_daemon 2

# Compaction keeps the log replayable.
"$MUI" serve --cache "$CACHE" --compact >"$WORK/compact.log" 2>&1 || \
    fail "compaction failed: $(cat "$WORK/compact.log")"
grep -q "live record" "$WORK/compact.log" || fail "compaction printed no summary"

# Round 3: end-to-end observability (docs/OBSERVABILITY.md). A submit with
# --trace-out must produce ONE merged Chrome trace whose client ring and
# daemon ring share the job ULID, /jobs must report an in-flight job's
# phase while the queue drains, and the daemon journal must gate cleanly
# through `mui stats --baseline` (and trip the gate once synthetically
# regressed).
MODELS_DIR=$(cd "$(dirname "$MANIFEST")/../models" && pwd)
SPIN="$WORK/spin.manifest"
{
  echo "default model=$MODELS_DIR/watchdog.muml pattern=Watchdog role=device"
  # Distinct max-iterations values give every job a distinct cache key, so
  # each one really runs the refinement loop and /jobs has time to observe
  # the queue.
  for i in $(seq 1 40); do
    echo "job name=spin-$i hidden=deviceCompliant max-iterations=$((1000 + i))"
  done
} >"$SPIN"

JOURNAL="$WORK/daemon-journal.jsonl"
TRACE="$WORK/merged_trace.json"
start_daemon 3 --threads 2 --journal-out "$JOURNAL"
"$MUI" submit "$SPIN" --port "$PORT" --trace-out "$TRACE" \
    --trace-context smoke >"$WORK/submit-3.log" 2>&1 &
SUBMIT_PID=$!

# While the batch drains, /jobs must expose at least one in-flight job with
# a live phase and its ULID.
SAW_INFLIGHT=0
for _ in $(seq 1 200); do
  http_get /jobs "$WORK/jobs.txt" || true
  if grep -q '"phase":"' "$WORK/jobs.txt" && \
     grep -q '"ulid":"' "$WORK/jobs.txt"; then
    SAW_INFLIGHT=1
    break
  fi
  kill -0 "$SUBMIT_PID" 2>/dev/null || break
  sleep 0.02
done
SUBMIT_RC=0
wait "$SUBMIT_PID" || SUBMIT_RC=$?
[ "$SUBMIT_RC" -eq 0 ] || \
    fail "traced submit exited $SUBMIT_RC; log: $(cat "$WORK/submit-3.log")"
[ "$SAW_INFLIGHT" -eq 1 ] || fail "/jobs never reported an in-flight job"
stop_daemon 3

# The merged trace holds both process rings...
[ -s "$TRACE" ] || fail "submit --trace-out wrote no trace"
grep -q '"mui-submit"' "$TRACE" || fail "merged trace lacks the client ring"
grep -q '"mui-serve"' "$TRACE" || fail "merged trace lacks the daemon ring"
# ...and at least one job ULID appears in events of BOTH pids, i.e. the
# correlation ID survived the wire protocol round trip.
SHARED=0
for id in $(grep -o '"id":"[0-9A-HJKMNP-TV-Z]\{26\}"' "$TRACE" | sort -u |
            cut -d'"' -f4); do
  PIDS=$(grep "\"id\":\"$id\"" "$TRACE" | grep -o '"pid":[0-9]*' | sort -u |
         wc -l)
  [ "$PIDS" -ge 2 ] && { SHARED=1; break; }
done
[ "$SHARED" -eq 1 ] || \
    fail "no job ULID is shared between the client and daemon trace rings"

# The daemon journal carries the correlation IDs and gates cleanly against
# itself...
[ -s "$JOURNAL" ] || fail "daemon 3 wrote no journal"
grep -q '"ulid":"' "$JOURNAL" || fail "daemon journal events carry no ulid"
"$MUI" stats "$JOURNAL" --baseline "$JOURNAL" >"$WORK/trend-ok.log" 2>&1 || \
    fail "clean trend gate tripped: $(cat "$WORK/trend-ok.log")"
grep -q "VERDICT: ok" "$WORK/trend-ok.log" || fail "clean trend gate lacks an ok verdict"
# ...while a synthetically regressed journal must trip the gate (exit 1).
sed 's/"iterations":[0-9]*/"iterations":9999/' "$JOURNAL" >"$WORK/regressed.jsonl"
RC=0
"$MUI" stats "$WORK/regressed.jsonl" --baseline "$JOURNAL" \
    >"$WORK/trend-bad.log" 2>&1 || RC=$?
[ "$RC" -eq 1 ] || fail "regressed trend gate exited $RC (want 1)"
grep -q "VERDICT: regressed" "$WORK/trend-bad.log" || \
    fail "regressed trend gate lacks a regressed verdict"

echo "serve_smoke: OK ($HITS/$TOTAL cache hits on the post-restart run; traced round saw in-flight jobs and a shared ULID)"
