#!/usr/bin/env bash
# End-to-end daemon lifecycle smoke test (also run as the CI daemon-smoke
# job): start `mui serve` with a durable cache, submit the example campaign
# manifest, restart the daemon, submit the same manifest again, and assert
# that the second run is answered almost entirely from the replayed cache
# (>= 90% hits — everything except the uncacheable timeout job) using the
# daemon's own /metrics endpoint. Both daemons must drain and exit 0 on
# SIGTERM.
#
# usage: serve_smoke.sh <mui-binary> <manifest> <work-dir>
set -euo pipefail

MUI=$1
MANIFEST=$2
WORK=$3

rm -rf "$WORK"
mkdir -p "$WORK"
CACHE="$WORK/cache.jsonl"
DAEMON_PID=""
PORT=""

fail() {
  echo "serve_smoke: FAIL: $*" >&2
  for log in "$WORK"/serve-*.log; do
    [ -f "$log" ] && { echo "--- $log ---" >&2; cat "$log" >&2; }
  done
  [ -n "$DAEMON_PID" ] && kill -KILL "$DAEMON_PID" 2>/dev/null
  exit 1
}

start_daemon() { # $1: label
  rm -f "$WORK/port"
  "$MUI" serve --port 0 --port-file "$WORK/port" --cache "$CACHE" \
      --threads 4 --queue-limit 64 >"$WORK/serve-$1.log" 2>&1 &
  DAEMON_PID=$!
  for _ in $(seq 1 150); do
    [ -s "$WORK/port" ] && break
    kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon $1 died on startup"
    sleep 0.1
  done
  [ -s "$WORK/port" ] || fail "daemon $1 never wrote its port file"
  PORT=$(cat "$WORK/port")
}

stop_daemon() { # $1: label
  kill -TERM "$DAEMON_PID"
  local rc=0
  wait "$DAEMON_PID" || rc=$?
  DAEMON_PID=""
  [ "$rc" -eq 0 ] || fail "daemon $1 exited $rc after SIGTERM (want 0)"
  grep -q "drained" "$WORK/serve-$1.log" || fail "daemon $1 did not report a drain"
}

http_get() { # $1: path, $2: output file
  exec 3<>"/dev/tcp/127.0.0.1/$PORT" || fail "cannot connect for GET $1"
  printf 'GET %s HTTP/1.0\r\nHost: localhost\r\n\r\n' "$1" >&3
  cat <&3 >"$2"
  exec 3<&- 3>&-
}

submit() { # $1: label
  local rc=0
  "$MUI" submit "$MANIFEST" --port "$PORT" >"$WORK/submit-$1.log" 2>&1 || rc=$?
  # The campaign deliberately contains real-error and timeout jobs, so a
  # healthy run exits 1; 2 would mean a protocol or connection failure.
  [ "$rc" -eq 1 ] || fail "submit $1 exited $rc (want 1); log: $(cat "$WORK/submit-$1.log")"
  grep -q "real-error" "$WORK/submit-$1.log" || fail "submit $1 report lacks the expected real-error row"
}

metric() { # $1: metrics file, $2: metric name -> prints the value (0 if absent)
  awk -v name="$2" '$1 == name { print $2; found = 1 } END { if (!found) print 0 }' "$1"
}

# Round 1: cold cache.
start_daemon 1
http_get /healthz "$WORK/healthz.txt"
grep -q "200" "$WORK/healthz.txt" || fail "/healthz is not 200 on a fresh daemon"
submit 1
# The cold run must exercise the semantic pre-solve stage: the campaign's
# guaranteed-faulty jobs are decided statically (docs/LINT_RULES.md,
# "Verdict pre-solving") before the refinement loop ever spins up.
http_get /metrics "$WORK/metrics-1.txt"
PROVED=$(metric "$WORK/metrics-1.txt" mui_presolve_proved_total)
REFUTED=$(metric "$WORK/metrics-1.txt" mui_presolve_refuted_total)
SKIPPED=$(metric "$WORK/metrics-1.txt" mui_presolve_skipped_total)
[ $((PROVED + REFUTED)) -ge 1 ] || \
    fail "cold run pre-solved nothing: proved=$PROVED refuted=$REFUTED skipped=$SKIPPED"
stop_daemon 1
[ -s "$CACHE" ] || fail "cache log $CACHE is empty after the first run"

# Round 2: a NEW daemon process replays the cache log; the same manifest
# must now be answered from cache for every cacheable job.
start_daemon 2
submit 2
http_get /metrics "$WORK/metrics.txt"
http_get /stats "$WORK/stats.txt"
grep -q '"type":"stats"' "$WORK/stats.txt" || fail "/stats did not return a stats object"

HITS=$(metric "$WORK/metrics.txt" mui_engine_cache_hits_total)
MISSES=$(metric "$WORK/metrics.txt" mui_engine_cache_misses_total)
TOTAL=$((HITS + MISSES))
[ "$TOTAL" -gt 0 ] || fail "daemon 2 reports no cache lookups at all"
# hits/total >= 0.9, in integers.
[ $((HITS * 10)) -ge $((TOTAL * 9)) ] || \
    fail "second run hit rate too low: $HITS/$TOTAL (want >= 90%)"
grep -q "mui_serve_jobs_total" "$WORK/metrics.txt" || fail "/metrics lacks serve counters"
stop_daemon 2

# Compaction keeps the log replayable.
"$MUI" serve --cache "$CACHE" --compact >"$WORK/compact.log" 2>&1 || \
    fail "compaction failed: $(cat "$WORK/compact.log")"
grep -q "live record" "$WORK/compact.log" || fail "compaction printed no summary"

echo "serve_smoke: OK ($HITS/$TOTAL cache hits on the post-restart run)"
