# Acceptance check for the semantic tier: every checked-in fuzz reproducer
# must run through `mui analyze` crash-free in both output formats. Findings
# are fine (reproducers are hostile by construction — exit 1 on rule errors
# is acceptable); crashes and usage errors are not. Invoked as a ctest entry
# from tools/CMakeLists.txt:
#   cmake -DMUI=<mui-binary> -DCORPUS=<corpus-dir> -P analyze_corpus.cmake
file(GLOB reproducers "${CORPUS}/*.muml")
if(NOT reproducers)
  message(FATAL_ERROR "no .muml reproducers under ${CORPUS}")
endif()
foreach(model IN LISTS reproducers)
  foreach(format text json)
    execute_process(COMMAND "${MUI}" analyze "${model}" --format ${format}
                    OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
    if(NOT rc MATCHES "^[01]$")
      message(FATAL_ERROR
              "mui analyze ${model} --format ${format} exited ${rc}:\n${out}\n${err}")
    endif()
  endforeach()
endforeach()
