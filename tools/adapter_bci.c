/* adapter_bci — a hand-written adapter around a BCI-firmware-style
 * protocol state machine, in plain C with no harness code: the kind of
 * thin shim a real legacy integration would bolt onto an existing binary
 * (docs/ADAPTERS.md describes the protocol it speaks).
 *
 * The firmware is input-deterministic over the signals {hello, cmd} in and
 * {ack, done} out:
 *
 *   offline --{hello}--> acking          (link request accepted, silent)
 *   acking  --{}------>  ready  / ack    (acknowledges one period later)
 *   ready   --{cmd}--->  busy            (command accepted, silent)
 *   busy    --{}------>  ready  / done   (completes one period later)
 *
 * offline and ready tolerate empty periods; every other input set is
 * refused (notably a second hello once linked, or a cmd while busy).
 * models/bci.muml carries the pattern this firmware is integrated under
 * and firmwareRef, the in-process mirror the differential tests compare
 * against.
 */

#include <stdio.h>
#include <string.h>

enum bci_state { BCI_OFFLINE, BCI_ACKING, BCI_READY, BCI_BUSY };

static const char *state_name(enum bci_state s) {
  switch (s) {
    case BCI_OFFLINE:
      return "offline";
    case BCI_ACKING:
      return "acking";
    case BCI_READY:
      return "ready";
    case BCI_BUSY:
      return "busy";
  }
  return "?";
}

/* Extracts the value of "inputs":"..." from a flat JSON request line.
 * Signal names never contain escapes, so scanning to the closing quote is
 * enough. Returns 0 when the key is absent (treated as no inputs). */
static int extract_inputs(const char *line, char *out, size_t cap) {
  const char *p = strstr(line, "\"inputs\"");
  if (p == NULL) return 0;
  p += strlen("\"inputs\"");
  while (*p == ' ' || *p == ':') ++p;
  if (*p != '"') return 0;
  ++p;
  {
    size_t n = 0;
    while (*p != '\0' && *p != '"' && n + 1 < cap) out[n++] = *p++;
    out[n] = '\0';
  }
  return 1;
}

int main(void) {
  char line[4096];
  enum bci_state st = BCI_OFFLINE;

  setvbuf(stdout, NULL, _IOLBF, 0);
  while (fgets(line, sizeof line, stdin) != NULL) {
    if (strstr(line, "\"cmd\":\"quit\"") != NULL) break;
    if (strstr(line, "\"cmd\":\"hello\"") != NULL) {
      printf(
          "{\"ok\":true,\"name\":\"bci-firmware\",\"inputs\":\"hello cmd\","
          "\"outputs\":\"ack done\"}\n");
      continue;
    }
    if (strstr(line, "\"cmd\":\"reset\"") != NULL) {
      st = BCI_OFFLINE;
      printf("{\"ok\":true}\n");
      continue;
    }
    if (strstr(line, "\"cmd\":\"probe\"") != NULL) {
      printf("{\"ok\":true,\"state\":\"%s\"}\n", state_name(st));
      continue;
    }
    if (strstr(line, "\"cmd\":\"step\"") != NULL) {
      char inputs[1024];
      int has_hello = 0, has_cmd = 0, unknown = 0;
      inputs[0] = '\0';
      (void)extract_inputs(line, inputs, sizeof inputs);
      {
        char *word = strtok(inputs, " ");
        while (word != NULL) {
          if (strcmp(word, "hello") == 0) {
            has_hello = 1;
          } else if (strcmp(word, "cmd") == 0) {
            has_cmd = 1;
          } else {
            unknown = 1;
          }
          word = strtok(NULL, " ");
        }
      }
      if (unknown) {
        printf("{\"ok\":false,\"error\":\"unknown input signal\"}\n");
        continue;
      }
      {
        int refused = 0;
        const char *out = "";
        switch (st) {
          case BCI_OFFLINE:
            if (has_hello && !has_cmd) {
              st = BCI_ACKING;
            } else if (has_hello || has_cmd) {
              refused = 1;
            }
            break;
          case BCI_ACKING:
            if (has_hello || has_cmd) {
              refused = 1;
            } else {
              st = BCI_READY;
              out = "ack";
            }
            break;
          case BCI_READY:
            if (has_cmd && !has_hello) {
              st = BCI_BUSY;
            } else if (has_hello || has_cmd) {
              refused = 1;
            }
            break;
          case BCI_BUSY:
            if (has_hello || has_cmd) {
              refused = 1;
            } else {
              st = BCI_READY;
              out = "done";
            }
            break;
        }
        if (refused) {
          printf("{\"ok\":true,\"refused\":true}\n");
        } else {
          printf("{\"ok\":true,\"outputs\":\"%s\"}\n", out);
        }
      }
      continue;
    }
    printf("{\"ok\":false,\"error\":\"unknown command\"}\n");
  }
  return 0;
}
