// mui — command-line front end to the library.
//
//   mui check <model.muml> <automaton> <formula>
//       Model check one automaton of the model against a CCTL formula;
//       prints the verdict and a counterexample run if one exists.
//
//   mui compose <model.muml> <automaton>... [--check <formula>]
//       Compose the named automata (Def. 3) and optionally check a formula
//       (plus deadlock freedom) on the product.
//
//   mui verify-pattern <model.muml> <pattern>
//       Compositional pattern verification: constraint, role invariants,
//       deadlock freedom.
//
//   mui integrate <model.muml> <pattern> <legacyRole> <hidden>
//                 [--trace-out F] [--metrics-out F] [--journal-out F]
//       Run the full legacy-integration loop: the named automaton of the
//       model — or, for a `legacy <name> external "..."` clause, an
//       out-of-process adapter binary (docs/ADAPTERS.md) — acts as the
//       hidden legacy component playing <legacyRole>;
//       the remaining roles (and connector) form the context. Prints the
//       journal, the verdict, and the learned model. The observability
//       flags (docs/OBSERVABILITY.md) write a Chrome/Perfetto trace, a
//       metrics snapshot (Prometheus text, or JSON for *.json paths) and
//       a structured JSONL run journal.
//
//   mui suite-gen <model.muml> <pattern> <legacyRole> <hiddenAutomaton>
//       Run the integration loop and write the generated component test
//       suite (a regression oracle) to stdout.
//
//   mui suite-run <model.muml> <suite-file> <hiddenAutomaton> <roleName>
//       Replay a saved suite against a component revision.
//
//   mui batch <manifest> [--jobs N] [--timeout-ms T] [--out <file>]
//             [--no-lint] [--trace-out F] [--metrics-out F]
//             [--journal-out F]
//       Run a whole campaign of integration jobs from a job manifest
//       (docs/BATCH_FORMAT.md) on a thread pool; prints the per-job table
//       and writes a JSON-lines summary with --out. Every job's model is
//       linted first (--no-lint skips that pre-flight). The observability
//       flags work as for `mui integrate`, with one trace track per
//       worker thread.
//
//   mui stats <journal.jsonl>... [--format text|json] [--baseline F]
//             [--threshold PCT] [--latency-threshold PCT]
//       Aggregate one or more run journals (written by --journal-out)
//       into per-iteration and per-run tables plus totals. --baseline
//       additionally aggregates an older journal and gates the current
//       one against it (obs/trend.hpp): work metrics may grow and rate
//       metrics may drop by at most --threshold (default 10) before the
//       verdict flips to "regressed" and the exit code to 1; p50/p99 job
//       latency stays advisory unless --latency-threshold is set. CI runs
//       this as a perf gate over a checked-in baseline journal.
//
//   mui serve [--host H] [--port P] [--port-file F] [--threads N]
//             [--queue-limit N] [--timeout-ms T] [--max-timeout-ms T]
//             [--retry-after-ms T] [--cache <file>] [--no-fsync]
//             [--no-lint] [--journal-out F] [--metrics-out F]
//       Verification-as-a-service daemon (docs/SERVE.md): accepts jobs as
//       newline-delimited JSON over loopback TCP (the manifest job schema),
//       runs them on the engine thread pool with admission control and
//       per-client deadlines, and streams results back as JSONL. --cache
//       layers a durable result cache under the in-memory one, replayed at
//       startup, so duplicate jobs are answered across restarts. The same
//       port serves HTTP GET /metrics, /healthz, and /stats. SIGTERM or
//       SIGINT drains gracefully: in-flight jobs finish, then exit 0.
//
//   mui serve --cache <file> --compact
//       Offline compaction: rewrite the cache log to one record per live
//       key (dropping superseded, corrupt, and collision-poisoned
//       records), then exit.
//
//   mui submit <manifest> --port P [--host H] [--deadline-ms T]
//              [--retry-rounds N] [--out <file>] [--trace-out F]
//              [--trace-context S]
//       Submit a job manifest (docs/BATCH_FORMAT.md) to a running daemon
//       and render the streamed results exactly like `mui batch`. Shed
//       jobs are retried after the daemon's retry-after hint for up to
//       --retry-rounds rounds (0 reports them immediately). --trace-out
//       records this client's spans, fetches the daemon's /trace snapshot,
//       and writes both rings merged into one Chrome trace document — the
//       client and daemon spans of each job share its correlation ULID.
//       --trace-context sends a free-form label the daemon attaches to
//       this connection's rows in /jobs.
//
//   mui top --port P [--host H] [--interval-ms T] [--count N] [--once]
//       Live view of the daemon's in-flight jobs (HTTP /jobs): one row per
//       accepted-but-unfinished job with its correlation ULID, phase,
//       disposition, iteration count, queue wait and run time. Refreshes
//       every --interval-ms (default 1000) until interrupted; --once (or
//       --count N) bounds the number of frames.
//
//   mui fuzz [--seed N] [--runs N] [--jobs N] [--time-budget SEC]
//            [--out <corpus-dir>] [--oracles O1,O3,...] [--no-shrink]
//            [--inject-bug <name>] [--journal-out F] [--metrics-out F]
//       Property-based fuzzing campaign (docs/FUZZING.md): N seeded
//       scenarios, each checked against the metamorphic oracles O1-O6.
//       Violations are shrunk to minimal reproducers and written to the
//       corpus directory. Deterministic in (seed, runs, oracle selection).
//       --inject-bug plants a known checker bug (harness self-test).
//
//   mui fuzz --replay <reproducer.muml>...
//       Re-run the recorded oracle of saved reproducer files.
//
//   mui lint <model.muml> [--format text|json] [--disable MUIxxx]...
//       Statically analyze a model (docs/LINT_RULES.md): unreachable and
//       sink states, unused signals, composition alphabet mismatches,
//       nondeterministic legacy stubs, duplicate transitions, bad formula
//       atoms, degenerate bounds, missing initial states, non-ACTL
//       formulas. --format json emits a SARIF 2.1.0 document.
//
//   mui dot <model.muml> <automaton|rtsc>
//       Emit Graphviz DOT for an automaton or a compiled statechart.
//
//   mui --help | --version
//
// Exit code: 0 on verified/proven (batch: every job proven; lint: no
// finding at warning or above; fuzz: campaign clean / replay does not
// reproduce), 1 on violation/real error (lint: warnings or errors; fuzz:
// oracle violations found / replay still reproduces), 2 on usage or model
// errors.

#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>

#include "analysis/analyze.hpp"
#include "analysis/render.hpp"
#include "analysis/semantic.hpp"
#include "automata/compose.hpp"
#include "automata/rename.hpp"
#include "ctl/counterexample.hpp"
#include "ctl/parser.hpp"
#include "engine/engine.hpp"
#include "engine/manifest.hpp"
#include "engine/persistent_cache.hpp"
#include "engine/report.hpp"
#include "fuzz/campaign.hpp"
#include "fuzz/reproducer.hpp"
#include "muml/external.hpp"
#include "muml/integration.hpp"
#include "muml/loader.hpp"
#include "muml/verify.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/process.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"
#include "obs/trend.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "synthesis/report.hpp"
#include "synthesis/test_suite.hpp"
#include "synthesis/verifier.hpp"
#include "testing/legacy.hpp"
#include "testing/subprocess.hpp"

#ifndef MUI_VERSION
#define MUI_VERSION "0.0.0-dev"
#endif

#ifndef MUI_GIT_SHA
#define MUI_GIT_SHA "unknown"
#endif

namespace {

using namespace mui;

void printUsage(std::FILE* out) {
  std::fprintf(
      out,
      "usage:\n"
      "  mui check <model.muml> <automaton> <formula>\n"
      "  mui compose <model.muml> <automaton>... [--check <formula>]\n"
      "  mui verify-pattern <model.muml> <pattern>\n"
      "  mui integrate <model.muml> <pattern> <legacyRole> <hidden>\n"
      "                [--trace-out F] [--metrics-out F] [--journal-out F]\n"
      "                (<hidden> names an automaton or a 'legacy ... "
      "external')\n"
      "  mui suite-gen <model.muml> <pattern> <legacyRole> <hidden>\n"
      "  mui suite-run <model.muml> <suite-file> <hidden> <roleName>\n"
      "  mui batch <manifest> [--jobs N] [--timeout-ms T] [--out <file>] "
      "[--no-lint]\n"
      "            [--no-presolve] [--semantic] [--cache <file>] "
      "[--trace-out F]\n"
      "            [--metrics-out F] [--journal-out F]\n"
      "  mui serve [--host H] [--port P] [--port-file F] [--threads N]\n"
      "            [--queue-limit N] [--timeout-ms T] [--max-timeout-ms T]\n"
      "            [--retry-after-ms T] [--cache <file>] [--no-fsync] "
      "[--no-lint]\n"
      "            [--no-presolve] [--journal-out F] [--metrics-out F]\n"
      "  mui serve --cache <file> --compact\n"
      "  mui submit <manifest> --port P [--host H] [--deadline-ms T]\n"
      "             [--retry-rounds N] [--out <file>] [--trace-out F]\n"
      "             [--trace-context S]\n"
      "  mui top --port P [--host H] [--interval-ms T] [--count N] [--once]\n"
      "  mui stats <journal.jsonl>... [--format text|json] [--baseline F]\n"
      "            [--threshold PCT] [--latency-threshold PCT]\n"
      "  mui fuzz [--seed N] [--runs N] [--jobs N] [--time-budget SEC]\n"
      "           [--out <corpus-dir>] [--oracles O1,O3,...] [--no-shrink]\n"
      "           [--inject-bug <name>] [--journal-out F] [--metrics-out F]\n"
      "  mui fuzz --replay <reproducer.muml>...\n"
      "  mui lint <model.muml> [--format text|json] [--disable MUIxxx]...\n"
      "  mui analyze <model.muml> [--format text|json] [--disable MUIxxx]...\n"
      "  mui dot <model.muml> <automaton|rtsc>\n"
      "  mui --help | --version\n"
      "exit codes: 0 verified/proven (lint: clean), 1 violation/real error "
      "(lint: findings\n"
      "at warning or above), 2 usage or model error\n");
}

int usage() {
  printUsage(stderr);
  return 2;
}

/// Usage error with a specific message, then the synopsis. Always exits 2.
int usageError(const std::string& msg) {
  std::fprintf(stderr, "mui: %s\n", msg.c_str());
  printUsage(stderr);
  return 2;
}

muml::Model loadFile(const char* path) { return muml::loadModelFile(path); }

void writeFileOrThrow(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write '" + path + "'");
  out << content;
}

std::string readFileOrThrow(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Shared --trace-out/--metrics-out/--journal-out handling for the verbs
/// that run the verification loop (integrate, batch). Lifecycle:
/// consume() the flags while parsing, beforeRun() before the loop starts,
/// writeArtifacts() once the verb has quiesced (tracer contract).
struct ObsOptions {
  std::string traceOut;
  std::string metricsOut;
  std::string journalOut;
  obs::Journal journal;

  /// Consumes argv[i] (and its value) when it is an observability flag.
  /// Throws on a flag with a missing value.
  bool consume(int argc, char** argv, int& i) {
    const auto flagValue = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        throw std::runtime_error(std::string(flag) + " needs a value");
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--trace-out") == 0) {
      traceOut = flagValue("--trace-out");
      return true;
    }
    if (std::strcmp(argv[i], "--metrics-out") == 0) {
      metricsOut = flagValue("--metrics-out");
      return true;
    }
    if (std::strcmp(argv[i], "--journal-out") == 0) {
      journalOut = flagValue("--journal-out");
      return true;
    }
    return false;
  }

  /// The journal sink to hand to the loop, or nullptr when not requested.
  obs::Journal* journalPtr() {
    return journalOut.empty() ? nullptr : &journal;
  }

  void beforeRun() {
    if (!traceOut.empty()) {
      obs::setThreadName("main");
      obs::Tracer::enable();
    }
  }

  void writeArtifacts() {
    if (!traceOut.empty()) {
      obs::Tracer::disable();
      writeFileOrThrow(traceOut, obs::Tracer::chromeTrace());
    }
    if (!metricsOut.empty()) {
      // Format by extension: *.json gets the JSON snapshot, everything
      // else the Prometheus exposition text.
      const bool json = metricsOut.size() >= 5 &&
                        metricsOut.compare(metricsOut.size() - 5, 5,
                                           ".json") == 0;
      auto& registry = obs::Registry::global();
      obs::sampleProcessGauges(registry);
      writeFileOrThrow(metricsOut, json ? registry.renderJson()
                                        : registry.renderPrometheus());
    }
    if (!journalOut.empty()) {
      writeFileOrThrow(journalOut, journal.text());
    }
  }
};

const automata::Automaton& findAutomaton(const muml::Model& model,
                                         const std::string& name) {
  const auto it = model.automata.find(name);
  if (it == model.automata.end()) {
    throw std::runtime_error("no automaton named '" + name + "' in the model");
  }
  return it->second;
}

int cmdCheck(int argc, char** argv) {
  if (argc != 3) {
    return usageError("check expects <model.muml> <automaton> <formula>");
  }
  const muml::Model model = loadFile(argv[0]);
  const auto& a = findAutomaton(model, argv[1]);
  const auto phi = ctl::parseFormula(argv[2]);
  ctl::VerifyOptions opts;
  opts.requireDeadlockFree = false;
  const auto res = ctl::verify(a, phi, opts);
  if (!res.unknownAtoms.empty()) {
    std::fprintf(stderr, "warning: unknown atoms:");
    for (const auto& p : res.unknownAtoms) std::fprintf(stderr, " %s", p.c_str());
    std::fprintf(stderr, "\n");
  }
  if (res.holds) {
    std::printf("HOLDS: %s\n", phi->toString().c_str());
    return 0;
  }
  std::printf("VIOLATED: %s\n", phi->toString().c_str());
  const auto& cex = res.cex();
  std::printf("counterexample (%s):\n", cex.note.c_str());
  for (std::size_t i = 0; i < cex.run.states.size(); ++i) {
    std::printf("  %s\n", a.stateName(cex.run.states[i]).c_str());
    if (i < cex.run.labels.size()) {
      std::printf("  --%s-->\n",
                  a.interactionToString(cex.run.labels[i]).c_str());
    }
  }
  return 1;
}

int cmdCompose(int argc, char** argv) {
  if (argc < 2) {
    return usageError(
        "compose expects <model.muml> <automaton>... [--check <formula>]");
  }
  const muml::Model model = loadFile(argv[0]);
  std::vector<const automata::Automaton*> parts;
  std::string formula;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      formula = argv[++i];
    } else {
      parts.push_back(&findAutomaton(model, argv[i]));
    }
  }
  if (parts.empty()) {
    return usageError("compose needs at least one automaton name");
  }
  const auto product = automata::composeAll(parts);
  std::printf("product: %zu states, %zu transitions\n",
              product.automaton.stateCount(),
              product.automaton.transitionCount());
  if (formula.empty()) return 0;
  const auto res =
      ctl::verify(product.automaton, ctl::parseFormula(formula), {});
  if (res.holds) {
    std::printf("HOLDS (incl. deadlock freedom)\n");
    return 0;
  }
  std::printf("VIOLATED (%s):\n%s", res.cex().note.c_str(),
              product.renderRun(res.cex().run).c_str());
  return 1;
}

int cmdVerifyPattern(int argc, char** argv) {
  if (argc != 2) {
    return usageError("verify-pattern expects <model.muml> <pattern>");
  }
  const muml::Model model = loadFile(argv[0]);
  const auto it = model.patterns.find(argv[1]);
  if (it == model.patterns.end()) {
    throw std::runtime_error(std::string("no pattern named '") + argv[1] +
                             "'");
  }
  const auto res = muml::verifyPattern(it->second, model.signals, model.props);
  std::printf("pattern %s: constraint %s, deadlock-free %s\n",
              it->second.name.c_str(), res.constraintHolds ? "OK" : "VIOLATED",
              res.deadlockFree ? "OK" : "VIOLATED");
  for (const auto& [role, ok] : res.roleInvariants) {
    std::printf("  role invariant %-12s %s\n", role.c_str(),
                ok ? "OK" : "VIOLATED");
  }
  if (!res.ok() && !res.details.counterexamples.empty()) {
    std::printf("counterexample:\n%s",
                res.composed.renderRun(res.details.cex().run).c_str());
  }
  return res.ok() ? 0 : 1;
}

int cmdIntegrate(int argc, char** argv) {
  ObsOptions obsOpts;
  std::vector<const char*> positional;
  for (int i = 0; i < argc; ++i) {
    if (obsOpts.consume(argc, argv, i)) continue;
    if (argv[i][0] == '-') {
      return usageError(std::string("unknown integrate flag '") + argv[i] +
                        "'");
    }
    positional.push_back(argv[i]);
  }
  if (positional.size() != 4) {
    return usageError(
        "integrate expects <model.muml> <pattern> <legacyRole> "
        "<hiddenAutomaton> [--trace-out F] [--metrics-out F] "
        "[--journal-out F]");
  }
  const muml::Model model = loadFile(positional[0]);
  const auto pit = model.patterns.find(positional[1]);
  if (pit == model.patterns.end()) {
    throw std::runtime_error(std::string("no pattern named '") +
                             positional[1] + "'");
  }
  const auto& pattern = pit->second;
  std::size_t roleIdx = pattern.roles.size();
  for (std::size_t i = 0; i < pattern.roles.size(); ++i) {
    if (pattern.roles[i].name == positional[2]) roleIdx = i;
  }
  if (roleIdx == pattern.roles.size()) {
    throw std::runtime_error(std::string("pattern has no role '") +
                             positional[2] + "'");
  }
  const auto scenario = muml::makeIntegrationScenario(
      pattern, roleIdx, model.signals, model.props);
  // The hidden component plays the role. An automaton gets its instance
  // name rebound so the role invariants and the pattern constraint see its
  // states; a `legacy ... external` clause spawns the adapter binary
  // out-of-process instead (docs/ADAPTERS.md).
  std::unique_ptr<testing::LegacyComponent> legacy;
  const auto eit = model.externals.find(positional[3]);
  if (eit != model.externals.end()) {
    muml::checkExternalInterface(eit->second, pattern.roles[roleIdx],
                                 model.source, model.signals);
    testing::SubprocessConfig scfg =
        testing::configFromExternal(model, eit->second);
    scfg.journal = obsOpts.journalPtr();
    legacy = std::make_unique<testing::SubprocessLegacy>(std::move(scfg));
  } else {
    legacy = std::make_unique<testing::AutomatonLegacy>(
        automata::withInstanceName(findAutomaton(model, positional[3]),
                                   pattern.roles[roleIdx].name));
  }

  synthesis::IntegrationConfig cfg;
  cfg.property = scenario.property;
  cfg.keepTraces = true;
  cfg.journal = obsOpts.journalPtr();
  cfg.runId = std::string(positional[1]) + "/" + positional[2] + "/" +
              positional[3];
  obsOpts.beforeRun();
  synthesis::IntegrationResult res;
  try {
    res = synthesis::IntegrationVerifier(scenario.context, *legacy, cfg)
              .run();
  } catch (const testing::AdapterFailure& e) {
    // Adapter death during the initial reset/probe, before the loop even
    // starts: report the distinct verdict instead of a generic error.
    obsOpts.writeArtifacts();
    std::printf("verdict: adapter-failure (%s)\n", e.what());
    return 1;
  }
  obsOpts.writeArtifacts();

  std::printf("%s", synthesis::renderJournal(res).c_str());
  std::printf("%s", synthesis::renderSummary(res).c_str());
  if (!res.counterexampleText.empty()) {
    std::printf("\ncounterexample:\n%s", res.counterexampleText.c_str());
  }
  std::printf("\nlearned model:\n%s",
              res.learnedModels[0].base().toText().c_str());
  return res.verdict == synthesis::Verdict::ProvenCorrect ? 0 : 1;
}

int cmdSuiteGen(int argc, char** argv) {
  if (argc != 4) {
    return usageError(
        "suite-gen expects <model.muml> <pattern> <legacyRole> <hidden>");
  }
  const muml::Model model = loadFile(argv[0]);
  const auto pit = model.patterns.find(argv[1]);
  if (pit == model.patterns.end()) {
    throw std::runtime_error(std::string("no pattern named '") + argv[1] +
                             "'");
  }
  std::size_t roleIdx = pit->second.roles.size();
  for (std::size_t i = 0; i < pit->second.roles.size(); ++i) {
    if (pit->second.roles[i].name == argv[2]) roleIdx = i;
  }
  if (roleIdx == pit->second.roles.size()) {
    throw std::runtime_error(std::string("pattern has no role '") + argv[2] +
                             "'");
  }
  const auto scenario = muml::makeIntegrationScenario(
      pit->second, roleIdx, model.signals, model.props);
  testing::AutomatonLegacy legacy(automata::withInstanceName(
      findAutomaton(model, argv[3]), pit->second.roles[roleIdx].name));
  synthesis::IntegrationConfig cfg;
  cfg.property = scenario.property;
  cfg.recordTests = true;
  const auto res =
      synthesis::IntegrationVerifier(scenario.context, legacy, cfg).run();
  std::fprintf(stderr, "# %s", synthesis::renderSummary(res).c_str());
  std::printf("%s", synthesis::writeSuite(res.recordedTests[0],
                                          *model.signals)
                        .c_str());
  return 0;
}

int cmdSuiteRun(int argc, char** argv) {
  if (argc != 4) {
    return usageError(
        "suite-run expects <model.muml> <suite-file> <hidden> <roleName>");
  }
  const muml::Model model = loadFile(argv[0]);
  std::ifstream in(argv[1]);
  if (!in) throw std::runtime_error(std::string("cannot open ") + argv[1]);
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto suite = synthesis::parseSuite(buf.str(), *model.signals);
  testing::AutomatonLegacy legacy(
      automata::withInstanceName(findAutomaton(model, argv[2]), argv[3]));
  const auto res = synthesis::runSuite(suite, legacy, *model.signals);
  std::printf("%zu/%zu tests passed\n", res.passed, suite.size());
  for (const auto& f : res.failures) std::printf("FAIL %s\n", f.c_str());
  return res.allPassed() ? 0 : 1;
}

int cmdDot(int argc, char** argv) {
  if (argc != 2) {
    return usageError("dot expects <model.muml> <automaton|rtsc>");
  }
  const muml::Model model = loadFile(argv[0]);
  if (const auto it = model.automata.find(argv[1]); it != model.automata.end()) {
    std::printf("%s", it->second.toDot().c_str());
    return 0;
  }
  if (const auto it = model.statecharts.find(argv[1]);
      it != model.statecharts.end()) {
    std::printf("%s",
                it->second.compile(model.signals, model.props).toDot().c_str());
    return 0;
  }
  throw std::runtime_error(std::string("no automaton or rtsc named '") +
                           argv[1] + "'");
}

int cmdLint(int argc, char** argv) {
  const char* modelPath = nullptr;
  bool json = false;
  analysis::RuleSet rules = analysis::RuleSet::all();
  // Flags and the model path may come in any order.
  for (int i = 0; i < argc; ++i) {
    const auto flagValue = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        throw std::runtime_error(std::string(flag) + " needs a value");
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--format") == 0) {
      const std::string format = flagValue("--format");
      if (format == "json") {
        json = true;
      } else if (format == "text") {
        json = false;
      } else {
        return usageError("--format expects 'text' or 'json'");
      }
    } else if (std::strcmp(argv[i], "--disable") == 0) {
      const char* id = flagValue("--disable");
      if (analysis::findRule(id) == nullptr) {
        return usageError(std::string("unknown lint rule '") + id + "'");
      }
      rules.disable(id);
    } else if (argv[i][0] == '-') {
      return usageError(std::string("unknown lint flag '") + argv[i] + "'");
    } else if (modelPath == nullptr) {
      modelPath = argv[i];
    } else {
      return usageError(std::string("unexpected lint argument '") + argv[i] +
                        "'");
    }
  }
  if (modelPath == nullptr) {
    return usageError(
        "lint expects <model.muml> [--format text|json] [--disable MUIxxx]");
  }

  const muml::Model model = loadFile(modelPath);
  const auto report = analysis::run(model, rules);
  std::printf("%s", json ? analysis::writeSarif(report).c_str()
                         : analysis::renderText(report).c_str());
  return report.clean() ? 0 : 1;
}

/// `mui analyze` — the full static-analysis surface: the syntactic lint
/// tier (MUI0xx) plus the semantic whole-integration tier (MUI1xx,
/// analysis::runSemantic) in one report. Unlike `mui lint`, warnings and
/// notes do not fail the exit code — the semantic tier is advisory; only
/// error-level findings exit 1.
int cmdAnalyze(int argc, char** argv) {
  const char* modelPath = nullptr;
  bool json = false;
  analysis::RuleSet rules = analysis::RuleSet::all();
  for (int i = 0; i < argc; ++i) {
    const auto flagValue = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        throw std::runtime_error(std::string(flag) + " needs a value");
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--format") == 0) {
      const std::string format = flagValue("--format");
      if (format == "json") {
        json = true;
      } else if (format == "text") {
        json = false;
      } else {
        return usageError("--format expects 'text' or 'json'");
      }
    } else if (std::strcmp(argv[i], "--disable") == 0) {
      const char* id = flagValue("--disable");
      if (analysis::findRule(id) == nullptr) {
        return usageError(std::string("unknown lint rule '") + id + "'");
      }
      rules.disable(id);
    } else if (argv[i][0] == '-') {
      return usageError(std::string("unknown analyze flag '") + argv[i] + "'");
    } else if (modelPath == nullptr) {
      modelPath = argv[i];
    } else {
      return usageError(std::string("unexpected analyze argument '") + argv[i] +
                        "'");
    }
  }
  if (modelPath == nullptr) {
    return usageError(
        "analyze expects <model.muml> [--format text|json] [--disable "
        "MUIxxx]");
  }

  const muml::Model model = loadFile(modelPath);
  analysis::Report report = analysis::run(model, rules);
  analysis::Report semantic = analysis::runSemantic(model, rules);
  report.suppressed += semantic.suppressed;
  for (auto& d : semantic.diagnostics) {
    report.diagnostics.push_back(std::move(d));
  }
  std::printf("%s", json ? analysis::writeSarif(report).c_str()
                         : analysis::renderText(report).c_str());
  return report.hasErrors() ? 1 : 0;
}

/// Parses a non-negative integer CLI argument; returns false on garbage.
bool parseUint(const char* text, std::uint64_t& out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  out = v;
  return true;
}

/// Parses a non-negative decimal CLI argument (threshold percentages).
bool parseNonNegDouble(const char* text, double& out) {
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0' || v < 0) return false;
  out = v;
  return true;
}

int cmdBatch(int argc, char** argv) {
  if (argc < 1) {
    return usageError(
        "batch expects <manifest> [--jobs N] [--timeout-ms T] [--out <file>]");
  }
  const char* manifestPath = argv[0];
  engine::BatchOptions options;
  ObsOptions obsOpts;
  std::string outPath;
  std::string cachePath;
  for (int i = 1; i < argc; ++i) {
    const auto flagValue = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        throw std::runtime_error(std::string(flag) + " needs a value");
      }
      return argv[++i];
    };
    std::uint64_t v = 0;
    if (obsOpts.consume(argc, argv, i)) {
      continue;
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      if (!parseUint(flagValue("--jobs"), v)) {
        return usageError("--jobs expects a non-negative integer");
      }
      options.threads = static_cast<std::size_t>(v);
    } else if (std::strcmp(argv[i], "--timeout-ms") == 0) {
      if (!parseUint(flagValue("--timeout-ms"), v)) {
        return usageError("--timeout-ms expects a non-negative integer");
      }
      options.defaultTimeoutMs = v;
    } else if (std::strcmp(argv[i], "--out") == 0) {
      outPath = flagValue("--out");
    } else if (std::strcmp(argv[i], "--cache") == 0) {
      cachePath = flagValue("--cache");
    } else if (std::strcmp(argv[i], "--no-lint") == 0) {
      options.lintPreflight = false;
    } else if (std::strcmp(argv[i], "--no-presolve") == 0) {
      options.semanticPresolve = false;
    } else if (std::strcmp(argv[i], "--semantic") == 0) {
      options.semanticDiagnostics = true;
    } else {
      return usageError(std::string("unknown batch flag '") + argv[i] + "'");
    }
  }

  // A durable cache makes consecutive batch runs over the same manifest
  // hit instead of recompute, same as the serve daemon (docs/SERVE.md).
  std::unique_ptr<engine::PersistentResultCache> persistent;
  if (!cachePath.empty()) {
    persistent = std::make_unique<engine::PersistentResultCache>(cachePath);
    options.persistent = persistent.get();
  }

  std::ifstream in(manifestPath);
  if (!in) {
    throw std::runtime_error(std::string("cannot open manifest '") +
                             manifestPath + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  // Model paths in a manifest are relative to the manifest's directory.
  const std::string baseDir =
      std::filesystem::path(manifestPath).parent_path().string();
  const auto jobs = engine::parseManifest(buf.str(), manifestPath, baseDir);

  options.journal = obsOpts.journalPtr();
  obsOpts.beforeRun();
  const auto report = engine::runBatch(jobs, options);
  obsOpts.writeArtifacts();
  std::printf("%s", engine::renderBatchReport(report).c_str());

  if (!outPath.empty()) {
    std::ofstream out(outPath);
    if (!out) {
      throw std::runtime_error("cannot write summary file '" + outPath + "'");
    }
    out << engine::writeBatchSummary(report);
  }
  return report.allProven() ? 0 : 1;
}

int cmdServe(int argc, char** argv) {
  serve::ServeOptions options;
  options.version = MUI_VERSION;
  ObsOptions obsOpts;
  std::string portFile;
  bool compactOnly = false;
  for (int i = 0; i < argc; ++i) {
    const auto flagValue = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        throw std::runtime_error(std::string(flag) + " needs a value");
      }
      return argv[++i];
    };
    std::uint64_t v = 0;
    if (obsOpts.consume(argc, argv, i)) {
      continue;
    } else if (std::strcmp(argv[i], "--host") == 0) {
      options.host = flagValue("--host");
    } else if (std::strcmp(argv[i], "--port") == 0) {
      if (!parseUint(flagValue("--port"), v) || v > 65535) {
        return usageError("--port expects a port number (0 = auto)");
      }
      options.port = static_cast<std::uint16_t>(v);
    } else if (std::strcmp(argv[i], "--port-file") == 0) {
      portFile = flagValue("--port-file");
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      if (!parseUint(flagValue("--threads"), v)) {
        return usageError("--threads expects a non-negative integer");
      }
      options.threads = static_cast<std::size_t>(v);
    } else if (std::strcmp(argv[i], "--queue-limit") == 0) {
      if (!parseUint(flagValue("--queue-limit"), v) || v == 0) {
        return usageError("--queue-limit expects a positive integer");
      }
      options.queueLimit = static_cast<std::size_t>(v);
    } else if (std::strcmp(argv[i], "--timeout-ms") == 0) {
      if (!parseUint(flagValue("--timeout-ms"), v)) {
        return usageError("--timeout-ms expects a non-negative integer");
      }
      options.defaultTimeoutMs = v;
    } else if (std::strcmp(argv[i], "--max-timeout-ms") == 0) {
      if (!parseUint(flagValue("--max-timeout-ms"), v)) {
        return usageError("--max-timeout-ms expects a non-negative integer");
      }
      options.maxTimeoutMs = v;
    } else if (std::strcmp(argv[i], "--retry-after-ms") == 0) {
      if (!parseUint(flagValue("--retry-after-ms"), v)) {
        return usageError("--retry-after-ms expects a non-negative integer");
      }
      options.retryAfterMs = v;
    } else if (std::strcmp(argv[i], "--cache") == 0) {
      options.cachePath = flagValue("--cache");
    } else if (std::strcmp(argv[i], "--cache-max-entries") == 0) {
      if (!parseUint(flagValue("--cache-max-entries"), v) || v == 0) {
        return usageError("--cache-max-entries expects a positive integer");
      }
      options.cacheMaxEntries = static_cast<std::size_t>(v);
    } else if (std::strcmp(argv[i], "--no-fsync") == 0) {
      options.fsyncCache = false;
    } else if (std::strcmp(argv[i], "--no-lint") == 0) {
      options.lintPreflight = false;
    } else if (std::strcmp(argv[i], "--no-presolve") == 0) {
      options.semanticPresolve = false;
    } else if (std::strcmp(argv[i], "--compact") == 0) {
      compactOnly = true;
    } else {
      return usageError(std::string("unknown serve flag '") + argv[i] + "'");
    }
  }

  if (compactOnly) {
    if (options.cachePath.empty()) {
      return usageError("--compact needs --cache <file>");
    }
    const std::size_t kept =
        engine::PersistentResultCache::compact(options.cachePath);
    std::printf("mui serve: compacted %s to %zu live record(s)\n",
                options.cachePath.c_str(), kept);
    return 0;
  }

  // Block the shutdown signals before start() spawns any thread so every
  // worker inherits the mask and delivery is confined to the sigwait
  // below — the only place a drain can begin.
  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGINT);
  sigaddset(&mask, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &mask, nullptr);

  options.journal = obsOpts.journalPtr();
  obsOpts.beforeRun();
  // The in-memory trace ring is bounded and cheap, and /trace serves it
  // live to `mui submit --trace-out` clients, so the daemon records spans
  // unconditionally; --trace-out only adds a file written on drain.
  obs::Tracer::enable();
  serve::Server server(options);
  server.start();
  if (!portFile.empty()) {
    writeFileOrThrow(portFile, std::to_string(server.port()) + "\n");
  }
  std::printf("mui serve: listening on %s:%u (threads=%zu, queue-limit=%zu%s)\n",
              options.host.c_str(), server.port(), server.stats().threads,
              options.queueLimit,
              options.cachePath.empty()
                  ? ""
                  : (", cache=" + options.cachePath).c_str());
  std::fflush(stdout);

  int sig = 0;
  sigwait(&mask, &sig);
  std::fprintf(stderr, "mui serve: caught %s, draining\n",
               sig == SIGTERM ? "SIGTERM" : "SIGINT");
  server.requestDrain();
  server.wait();
  obsOpts.writeArtifacts();
  const serve::ServeStats st = server.stats();
  std::printf("mui serve: drained (%llu job(s) completed, %llu shed, "
              "%llu connection(s))\n",
              static_cast<unsigned long long>(st.jobsCompleted),
              static_cast<unsigned long long>(st.jobsShed),
              static_cast<unsigned long long>(st.connections));
  return 0;
}

int cmdSubmit(int argc, char** argv) {
  if (argc < 1 || argv[0][0] == '-') {
    return usageError("submit expects <manifest> --port P [--host H] "
                      "[--deadline-ms T] [--retry-rounds N] [--out <file>]");
  }
  const char* manifestPath = argv[0];
  serve::SubmitOptions options;
  std::string outPath;
  std::string traceOut;
  bool portSet = false;
  for (int i = 1; i < argc; ++i) {
    const auto flagValue = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        throw std::runtime_error(std::string(flag) + " needs a value");
      }
      return argv[++i];
    };
    std::uint64_t v = 0;
    if (std::strcmp(argv[i], "--host") == 0) {
      options.host = flagValue("--host");
    } else if (std::strcmp(argv[i], "--port") == 0) {
      if (!parseUint(flagValue("--port"), v) || v == 0 || v > 65535) {
        return usageError("--port expects the daemon's port number");
      }
      options.port = static_cast<std::uint16_t>(v);
      portSet = true;
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0) {
      if (!parseUint(flagValue("--deadline-ms"), v)) {
        return usageError("--deadline-ms expects a non-negative integer");
      }
      options.deadlineMs = v;
    } else if (std::strcmp(argv[i], "--retry-rounds") == 0) {
      if (!parseUint(flagValue("--retry-rounds"), v)) {
        return usageError("--retry-rounds expects a non-negative integer");
      }
      options.maxRetryRounds = static_cast<std::size_t>(v);
    } else if (std::strcmp(argv[i], "--out") == 0) {
      outPath = flagValue("--out");
    } else if (std::strcmp(argv[i], "--trace-out") == 0) {
      traceOut = flagValue("--trace-out");
    } else if (std::strcmp(argv[i], "--trace-context") == 0) {
      options.trace = flagValue("--trace-context");
    } else {
      return usageError(std::string("unknown submit flag '") + argv[i] + "'");
    }
  }
  if (!portSet) {
    return usageError("submit needs --port <port> (start one with `mui serve`)");
  }

  const std::string manifestText = readFileOrThrow(manifestPath);
  const std::string baseDir =
      std::filesystem::path(manifestPath).parent_path().string();
  auto jobs = engine::parseManifest(manifestText, manifestPath, baseDir);
  // The daemon opens model files in *its* working directory, so relative
  // manifest paths must be absolutized client-side.
  for (auto& job : jobs) {
    job.modelPath = std::filesystem::absolute(job.modelPath)
                        .lexically_normal()
                        .string();
  }

  if (!traceOut.empty()) {
    obs::setThreadName("main");
    obs::Tracer::enable();
  }
  const serve::SubmitOutcome outcome = serve::submitJobs(jobs, options);
  if (!traceOut.empty()) {
    obs::Tracer::disable();
    // Merge this client's ring with the daemon's /trace snapshot: one
    // document, two pids, the per-job async bars keyed by shared ULIDs.
    std::vector<std::string> docs;
    docs.push_back(obs::Tracer::chromeTrace(1, "mui-submit"));
    try {
      docs.push_back(serve::httpGet(options.host, options.port, "/trace"));
    } catch (const std::exception& e) {
      std::fprintf(stderr,
                   "submit: daemon trace unavailable, writing the client "
                   "ring only (%s)\n",
                   e.what());
    }
    writeFileOrThrow(traceOut, obs::mergeChromeTraces(docs));
  }
  std::printf("%s", engine::renderBatchReport(outcome.report).c_str());
  if (outcome.shedRetries > 0) {
    std::printf("submit: %llu shed job submission(s) retried\n",
                static_cast<unsigned long long>(outcome.shedRetries));
  }
  if (!outPath.empty()) {
    writeFileOrThrow(outPath, engine::writeBatchSummary(outcome.report));
  }
  return outcome.report.allProven() ? 0 : 1;
}

int cmdStats(int argc, char** argv) {
  bool json = false;
  std::vector<std::string> paths;
  std::vector<std::string> baselinePaths;
  obs::TrendOptions trendOpts;
  for (int i = 0; i < argc; ++i) {
    const auto flagValue = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        throw std::runtime_error(std::string(flag) + " needs a value");
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--format") == 0) {
      const std::string format = flagValue("--format");
      if (format == "json") {
        json = true;
      } else if (format == "text") {
        json = false;
      } else {
        return usageError("--format expects 'text' or 'json'");
      }
    } else if (std::strcmp(argv[i], "--baseline") == 0) {
      baselinePaths.emplace_back(flagValue("--baseline"));
    } else if (std::strcmp(argv[i], "--threshold") == 0) {
      if (!parseNonNegDouble(flagValue("--threshold"),
                             trendOpts.thresholdPct)) {
        return usageError("--threshold expects a non-negative percentage");
      }
    } else if (std::strcmp(argv[i], "--latency-threshold") == 0) {
      if (!parseNonNegDouble(flagValue("--latency-threshold"),
                             trendOpts.latencyThresholdPct)) {
        return usageError(
            "--latency-threshold expects a non-negative percentage");
      }
    } else if (argv[i][0] == '-') {
      return usageError(std::string("unknown stats flag '") + argv[i] + "'");
    } else {
      paths.emplace_back(argv[i]);
    }
  }
  if (paths.empty()) {
    return usageError(
        "stats expects <journal.jsonl>... [--format text|json] "
        "[--baseline F] [--threshold PCT] [--latency-threshold PCT]");
  }
  std::vector<std::string> journals;
  journals.reserve(paths.size());
  for (const auto& path : paths) journals.push_back(readFileOrThrow(path));
  const auto report = obs::aggregateJournals(journals);
  if (baselinePaths.empty()) {
    std::printf("%s", json ? obs::renderStatsJson(report).c_str()
                           : obs::renderStatsText(report).c_str());
    return 0;
  }

  // Trend gate: aggregate the baseline journal(s) the same way and compare.
  // JSON mode emits only the trend document (the machine-readable verdict
  // CI consumes); text mode prints the current stats first for context.
  std::vector<std::string> baseJournals;
  baseJournals.reserve(baselinePaths.size());
  for (const auto& path : baselinePaths) {
    baseJournals.push_back(readFileOrThrow(path));
  }
  const auto baseline = obs::aggregateJournals(baseJournals);
  const auto trend = obs::compareTrend(baseline, report, trendOpts);
  if (json) {
    std::printf("%s", obs::renderTrendJson(trend).c_str());
  } else {
    std::printf("%s\n%s", obs::renderStatsText(report).c_str(),
                obs::renderTrendText(trend).c_str());
  }
  return trend.regressed ? 1 : 0;
}

/// `mui top` — poll the daemon's /jobs endpoint and render the in-flight
/// job table. On a TTY each frame repaints in place; piped output appends
/// frames, so `mui top --once` is also a script-friendly snapshot.
int cmdTop(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::uint64_t intervalMs = 1000;
  std::uint64_t frames = 0;  // 0 = until interrupted
  for (int i = 0; i < argc; ++i) {
    const auto flagValue = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        throw std::runtime_error(std::string(flag) + " needs a value");
      }
      return argv[++i];
    };
    std::uint64_t v = 0;
    if (std::strcmp(argv[i], "--host") == 0) {
      host = flagValue("--host");
    } else if (std::strcmp(argv[i], "--port") == 0) {
      if (!parseUint(flagValue("--port"), v) || v == 0 || v > 65535) {
        return usageError("--port expects the daemon's port number");
      }
      port = static_cast<std::uint16_t>(v);
    } else if (std::strcmp(argv[i], "--interval-ms") == 0) {
      if (!parseUint(flagValue("--interval-ms"), v) || v == 0) {
        return usageError("--interval-ms expects a positive integer");
      }
      intervalMs = v;
    } else if (std::strcmp(argv[i], "--count") == 0) {
      if (!parseUint(flagValue("--count"), v) || v == 0) {
        return usageError("--count expects a positive integer");
      }
      frames = v;
    } else if (std::strcmp(argv[i], "--once") == 0) {
      frames = 1;
    } else {
      return usageError(std::string("unknown top flag '") + argv[i] + "'");
    }
  }
  if (port == 0) {
    return usageError("top needs --port <port> (start one with `mui serve`)");
  }

  const bool tty = ::isatty(STDOUT_FILENO) != 0;
  for (std::uint64_t frame = 0; frames == 0 || frame < frames; ++frame) {
    if (frame != 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(intervalMs));
    }
    std::string body;
    try {
      body = serve::httpGet(host, port, "/jobs");
    } catch (const std::exception& e) {
      std::fprintf(stderr, "mui top: %s\n", e.what());
      return 1;
    }
    const auto obj = obs::parseFlatJson(body);
    if (!obj) {
      std::fprintf(stderr, "mui top: unparseable /jobs payload\n");
      return 1;
    }
    std::vector<obs::FlatObject> rows;
    if (const auto it = obj->find("jobs"); it != obj->end()) {
      if (auto parsed = obs::parseFlatJsonArray(it->second.text)) {
        rows = std::move(*parsed);
      }
    }
    const auto str = [](const obs::FlatObject& o, const char* key) {
      const auto it = o.find(key);
      return it == o.end() ? std::string() : it->second.text;
    };
    const auto num = [](const obs::FlatObject& o, const char* key) {
      const auto it = o.find(key);
      return it == o.end() ? 0.0 : it->second.number;
    };

    if (tty && frames != 1) std::printf("\x1b[H\x1b[2J");
    const auto inflight = obj->find("inflight");
    std::printf("mui top — %s:%u — %llu job(s) in flight\n", host.c_str(),
                port,
                static_cast<unsigned long long>(
                    inflight == obj->end() ? rows.size()
                                           : inflight->second.asUint()));
    std::printf("%-26s  %-16s  %-8s  %-9s  %5s  %9s  %9s  %s\n", "ULID",
                "NAME", "PHASE", "DISP", "ITER", "QUEUED-MS", "RUN-MS",
                "CLIENT");
    for (const auto& row : rows) {
      const std::string trace = str(row, "trace");
      std::printf("%-26s  %-16s  %-8s  %-9s  %5llu  %9.0f  %9.0f  %s%s%s\n",
                  str(row, "ulid").c_str(), str(row, "name").c_str(),
                  str(row, "phase").c_str(), str(row, "disposition").c_str(),
                  static_cast<unsigned long long>(num(row, "iteration")),
                  num(row, "queuedMs"), num(row, "runMs"),
                  str(row, "client").c_str(),
                  trace.empty() ? "" : " · ", trace.c_str());
    }
    std::fflush(stdout);
  }
  return 0;
}

int cmdFuzz(int argc, char** argv) {
  fuzz::FuzzOptions options;
  ObsOptions obsOpts;
  std::vector<std::string> replayPaths;
  bool replayMode = false;
  for (int i = 0; i < argc; ++i) {
    const auto flagValue = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        throw std::runtime_error(std::string(flag) + " needs a value");
      }
      return argv[++i];
    };
    std::uint64_t v = 0;
    if (obsOpts.consume(argc, argv, i)) {
      continue;
    } else if (std::strcmp(argv[i], "--replay") == 0) {
      replayMode = true;
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      if (!parseUint(flagValue("--seed"), v)) {
        return usageError("--seed expects a non-negative integer");
      }
      options.seed = v;
    } else if (std::strcmp(argv[i], "--runs") == 0) {
      if (!parseUint(flagValue("--runs"), v)) {
        return usageError("--runs expects a non-negative integer");
      }
      options.runs = static_cast<std::size_t>(v);
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      if (!parseUint(flagValue("--jobs"), v)) {
        return usageError("--jobs expects a non-negative integer");
      }
      options.jobs = static_cast<std::size_t>(v);
    } else if (std::strcmp(argv[i], "--time-budget") == 0) {
      if (!parseUint(flagValue("--time-budget"), v)) {
        return usageError("--time-budget expects seconds");
      }
      options.timeBudgetSec = v;
    } else if (std::strcmp(argv[i], "--out") == 0) {
      options.outDir = flagValue("--out");
    } else if (std::strcmp(argv[i], "--oracles") == 0) {
      std::string list = flagValue("--oracles");
      std::size_t pos = 0;
      while (pos <= list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::string name =
            list.substr(pos, comma == std::string::npos ? std::string::npos
                                                        : comma - pos);
        if (!name.empty()) {
          const auto id = fuzz::oracleFromString(name);
          if (!id) {
            return usageError("unknown oracle '" + name +
                              "' (expected O1..O6)");
          }
          options.oracles.push_back(*id);
        }
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
      if (options.oracles.empty()) {
        return usageError("--oracles expects a comma-separated O1..O6 list");
      }
    } else if (std::strcmp(argv[i], "--inject-bug") == 0) {
      const char* name = flagValue("--inject-bug");
      const auto bug = fuzz::bugInjectionFromString(name);
      if (!bug) {
        return usageError(std::string("unknown bug injection '") + name +
                          "' (expected: none, o1-deadlock-af)");
      }
      options.oracle.injectBug = *bug;
    } else if (std::strcmp(argv[i], "--no-shrink") == 0) {
      options.shrink = false;
    } else if (argv[i][0] == '-') {
      return usageError(std::string("unknown fuzz flag '") + argv[i] + "'");
    } else if (replayMode) {
      replayPaths.emplace_back(argv[i]);
    } else {
      return usageError(std::string("unexpected fuzz argument '") + argv[i] +
                        "' (reproducer files need --replay)");
    }
  }

  if (replayMode) {
    if (replayPaths.empty()) {
      return usageError("--replay expects at least one reproducer file");
    }
    std::size_t reproduced = 0;
    for (const auto& path : replayPaths) {
      const fuzz::Reproducer repro = fuzz::loadReproducerFile(path);
      fuzz::OracleOptions opts = options.oracle;
      opts.propertyOnly = !repro.scenario.property.empty();
      const fuzz::OracleResult res = fuzz::replayReproducer(repro, opts);
      if (res.ok) {
        std::printf("%s: %s no longer reproduces\n", path.c_str(),
                    fuzz::toString(repro.oracle));
      } else {
        ++reproduced;
        std::printf("%s: %s REPRODUCES\n    %s\n", path.c_str(),
                    fuzz::toString(repro.oracle), res.detail.c_str());
      }
    }
    std::printf("%zu/%zu reproducers still fail their oracle\n", reproduced,
                replayPaths.size());
    return reproduced == 0 ? 0 : 1;
  }

  options.journal = obsOpts.journalPtr();
  obsOpts.beforeRun();
  const fuzz::FuzzReport report = fuzz::runCampaign(options);
  obsOpts.writeArtifacts();
  std::printf("%s", fuzz::renderFuzzSummary(report).c_str());
  return report.clean() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  try {
    obs::setBuildInfo(obs::Registry::global(), MUI_VERSION, MUI_GIT_SHA);
    const std::string cmd = argv[1];
    if (cmd == "--help" || cmd == "-h" || cmd == "help") {
      printUsage(stdout);
      return 0;
    }
    if (cmd == "--version" || cmd == "version") {
      std::printf("mui %s (%s)\n", MUI_VERSION, MUI_GIT_SHA);
      return 0;
    }
    if (cmd == "check") return cmdCheck(argc - 2, argv + 2);
    if (cmd == "compose") return cmdCompose(argc - 2, argv + 2);
    if (cmd == "verify-pattern") return cmdVerifyPattern(argc - 2, argv + 2);
    if (cmd == "integrate") return cmdIntegrate(argc - 2, argv + 2);
    if (cmd == "suite-gen") return cmdSuiteGen(argc - 2, argv + 2);
    if (cmd == "suite-run") return cmdSuiteRun(argc - 2, argv + 2);
    if (cmd == "batch") return cmdBatch(argc - 2, argv + 2);
    if (cmd == "serve") return cmdServe(argc - 2, argv + 2);
    if (cmd == "submit") return cmdSubmit(argc - 2, argv + 2);
    if (cmd == "stats") return cmdStats(argc - 2, argv + 2);
    if (cmd == "top") return cmdTop(argc - 2, argv + 2);
    if (cmd == "fuzz") return cmdFuzz(argc - 2, argv + 2);
    if (cmd == "lint") return cmdLint(argc - 2, argv + 2);
    if (cmd == "analyze") return cmdAnalyze(argc - 2, argv + 2);
    if (cmd == "dot") return cmdDot(argc - 2, argv + 2);
    return usageError("unknown command '" + cmd + "'");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
