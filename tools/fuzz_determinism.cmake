# Acceptance check for the fuzzing subsystem: the same seeded campaign run
# twice must print byte-identical summaries (no wall-clock, no interleaving
# effects). Invoked as a ctest entry from tools/CMakeLists.txt:
#   cmake -DMUI=<mui-binary> -P fuzz_determinism.cmake
execute_process(COMMAND "${MUI}" fuzz --seed 1 --runs 200
                OUTPUT_VARIABLE first RESULT_VARIABLE rc1)
execute_process(COMMAND "${MUI}" fuzz --seed 1 --runs 200 --jobs 4
                OUTPUT_VARIABLE second RESULT_VARIABLE rc2)
if(NOT rc1 EQUAL 0 OR NOT rc2 EQUAL 0)
  message(FATAL_ERROR "mui fuzz exited nonzero (${rc1} / ${rc2}):\n${first}\n${second}")
endif()
if(NOT first STREQUAL second)
  message(FATAL_ERROR "mui fuzz --seed 1 --runs 200 is not deterministic:\n--- run 1 ---\n${first}\n--- run 2 (--jobs 4) ---\n${second}")
endif()
