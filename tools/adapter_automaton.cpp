// adapter_automaton — reference out-of-process legacy adapter.
//
//   adapter_automaton <model.muml> <automaton> [--instance NAME]
//                     [--chaos crash-at=N|hang-at=N|garbage-at=N|exit-early]
//
// Wraps any .muml automaton behind the JSONL adapter protocol
// (docs/ADAPTERS.md): one flat JSON request per stdin line, one flat JSON
// response per stdout line. This is both the differential-conformance
// oracle (the same hidden automaton driven in-process through
// AutomatonLegacy and out-of-process through this binary must be
// indistinguishable) and the fault-injection vehicle: --chaos makes the
// adapter misbehave at a chosen step so the harness's containment paths
// can be exercised deterministically.
//
//   crash-at=N    _exit(3) on receiving the Nth step request (1-based,
//                 counted over the process lifetime, so a respawned adapter
//                 crashes again — the respawn budget always exhausts)
//   hang-at=N     block forever on the Nth step (never answers)
//   garbage-at=N  answer the Nth step with a non-JSON line
//   exit-early    answer the hello, then exit immediately
//
// --instance rebinds the automaton's instance name first (the probe state
// names then match what the in-process harness sees after
// automata::withInstanceName).

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "automata/rename.hpp"
#include "muml/loader.hpp"
#include "obs/journal.hpp"
#include "testing/legacy.hpp"
#include "util/json.hpp"

namespace {

using namespace mui;

struct Chaos {
  enum class Mode { None, CrashAt, HangAt, GarbageAt, ExitEarly };
  Mode mode = Mode::None;
  unsigned long at = 0;
};

std::optional<Chaos> parseChaos(const std::string& spec) {
  Chaos c;
  if (spec == "exit-early") {
    c.mode = Chaos::Mode::ExitEarly;
    return c;
  }
  const auto eq = spec.find('=');
  if (eq == std::string::npos) return std::nullopt;
  const std::string key = spec.substr(0, eq);
  char* end = nullptr;
  c.at = std::strtoul(spec.c_str() + eq + 1, &end, 10);
  if (end == nullptr || *end != '\0' || c.at == 0) return std::nullopt;
  if (key == "crash-at") {
    c.mode = Chaos::Mode::CrashAt;
  } else if (key == "hang-at") {
    c.mode = Chaos::Mode::HangAt;
  } else if (key == "garbage-at") {
    c.mode = Chaos::Mode::GarbageAt;
  } else {
    return std::nullopt;
  }
  return c;
}

void respond(const std::string& body) {
  std::fputs(body.c_str(), stdout);
  std::fputc('\n', stdout);
  std::fflush(stdout);
}

std::string renderSignals(const automata::SignalSet& set,
                          const automata::SignalTable& table) {
  std::string out;
  set.forEach([&](std::size_t bit) {
    if (!out.empty()) out += ' ';
    out += table.name(static_cast<util::NameId>(bit));
  });
  return out;
}

std::vector<std::string> splitNames(const std::string& text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && text[i] == ' ') ++i;
    std::size_t j = i;
    while (j < text.size() && text[j] != ' ') ++j;
    if (j > i) out.push_back(text.substr(i, j - i));
    i = j;
  }
  return out;
}

int usage() {
  std::fprintf(stderr,
               "usage: adapter_automaton <model.muml> <automaton>\n"
               "           [--instance NAME]\n"
               "           [--chaos crash-at=N|hang-at=N|garbage-at=N|"
               "exit-early]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string instance;
  std::string chaosSpec;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--instance" && i + 1 < argc) {
      instance = argv[++i];
    } else if (a == "--chaos" && i + 1 < argc) {
      chaosSpec = argv[++i];
    } else if (!a.empty() && a[0] == '-') {
      return usage();
    } else {
      positional.push_back(a);
    }
  }
  if (positional.size() != 2) return usage();
  Chaos chaos;
  if (!chaosSpec.empty()) {
    const auto parsed = parseChaos(chaosSpec);
    if (!parsed) {
      std::fprintf(stderr, "adapter_automaton: bad --chaos spec '%s'\n",
                   chaosSpec.c_str());
      return 2;
    }
    chaos = *parsed;
  }

  muml::Model model;
  try {
    model = muml::loadModelFile(positional[0]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "adapter_automaton: %s\n", e.what());
    return 2;
  }
  const auto it = model.automata.find(positional[1]);
  if (it == model.automata.end()) {
    std::fprintf(stderr, "adapter_automaton: no automaton named '%s' in %s\n",
                 positional[1].c_str(), positional[0].c_str());
    return 2;
  }
  automata::Automaton hidden = it->second;
  if (!instance.empty()) {
    hidden = automata::withInstanceName(hidden, instance);
  }
  testing::AutomatonLegacy legacy(std::move(hidden));
  const automata::SignalTable& table = *model.signals;

  unsigned long steps = 0;
  std::string line;
  while (std::getline(std::cin, line)) {
    const auto req = obs::parseFlatJson(line);
    if (!req) {
      respond("{\"ok\":false,\"error\":\"unparseable request\"}");
      continue;
    }
    const auto cit = req->find("cmd");
    const std::string cmd =
        cit != req->end() ? cit->second.text : std::string();
    if (cmd == "quit") break;
    if (cmd == "hello") {
      respond("{\"ok\":true,\"name\":" + util::jsonQuote(legacy.name()) +
              ",\"inputs\":" +
              util::jsonQuote(renderSignals(legacy.inputs(), table)) +
              ",\"outputs\":" +
              util::jsonQuote(renderSignals(legacy.outputs(), table)) + "}");
      if (chaos.mode == Chaos::Mode::ExitEarly) return 0;
      continue;
    }
    if (cmd == "reset") {
      legacy.reset();
      respond("{\"ok\":true}");
      continue;
    }
    if (cmd == "probe") {
      respond("{\"ok\":true,\"state\":" +
              util::jsonQuote(legacy.currentStateName()) + "}");
      continue;
    }
    if (cmd == "step") {
      ++steps;
      if (chaos.mode == Chaos::Mode::CrashAt && steps == chaos.at) {
        ::_exit(3);
      }
      if (chaos.mode == Chaos::Mode::HangAt && steps == chaos.at) {
        for (;;) ::pause();
      }
      if (chaos.mode == Chaos::Mode::GarbageAt && steps == chaos.at) {
        respond("!! this is not json !!");
        continue;
      }
      const auto iit = req->find("inputs");
      automata::SignalSet inputs;
      bool bad = false;
      if (iit != req->end()) {
        for (const auto& name : splitNames(iit->second.text)) {
          const auto id = model.signals->lookup(name);
          if (!id) {
            respond("{\"ok\":false,\"error\":" +
                    util::jsonQuote("unknown input signal '" + name + "'") +
                    "}");
            bad = true;
            break;
          }
          inputs.set(*id);
        }
      }
      if (bad) continue;
      const auto out = legacy.step(inputs);
      if (!out) {
        respond("{\"ok\":true,\"refused\":true}");
      } else {
        respond("{\"ok\":true,\"outputs\":" +
                util::jsonQuote(renderSignals(*out, table)) + "}");
      }
      continue;
    }
    respond("{\"ok\":false,\"error\":" +
            util::jsonQuote("unknown command '" + cmd + "'") + "}");
  }
  return 0;
}
